// Command localut-serve runs the request-level serving simulator: a
// discrete-event traffic engine over the cycles-only execution backend.
// It offers a seeded arrival stream (open-loop Poisson by default, or a
// closed client loop) to a multi-rank LoCaLUT appliance, batches requests
// with the chosen scheduler, prices every forward pass through the gemm
// planners — autoregressive decode at token granularity with continuous
// batching — and reports latency percentiles, TTFT/TPOT, token
// throughput, utilization and energy per request — bit-identical for a
// given seed at any -j.
//
// Usage:
//
//	localut-serve -model bert-base -rate 100 -duration 60s -seed 1
//	localut-serve -model opt-125m -rate 50 -out-tokens-mean 32 -out-tokens-max 128
//	localut-serve -model opt-125m -design OP+LC+RC -scheduler fcfs -clients 32 -think 200ms
//	localut-serve -model bert-base -sweep 25,50,100,200,400 [-designs "OP+LC+RC,LoCaLUT"]
//	localut-serve -bench-json BENCH_serve.json
//
// Output is a key/value table by default; -json and -csv switch formats,
// -hist adds a latency histogram, -o writes to a file.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/ais-snu/localut"
	"github.com/ais-snu/localut/internal/audit"
	"github.com/ais-snu/localut/internal/dnn"
	"github.com/ais-snu/localut/internal/experiments"
	"github.com/ais-snu/localut/internal/gemm"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/prof"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/serve"
	"github.com/ais-snu/localut/internal/trace"
)

func main() {
	model := flag.String("model", "bert-base", "model: bert-base, opt-125m or vit-base")
	fmtName := flag.String("fmt", "W1A3", "quantization format (WxAy)")
	design := flag.String("design", "LoCaLUT", "kernel design point")
	replicas := flag.Int("replicas", 4, "independent serving groups the ranks split into")
	ranks := flag.Int("ranks", 0, "override the appliance rank count (0 = testbed 32)")
	rate := flag.Float64("rate", 100, "open-loop Poisson arrival rate (requests/sec)")
	duration := flag.Duration("duration", 60*time.Second, "arrival window")
	seed := flag.Int64("seed", 1, "workload seed")
	maxBatch := flag.Int("max-batch", 8, "requests per batch")
	sched := flag.String("scheduler", "packed", "batch scheduler: fcfs or packed")
	clients := flag.Int("clients", 0, "closed-loop client count (overrides -rate)")
	think := flag.Duration("think", 100*time.Millisecond, "closed-loop mean think time")
	quantum := flag.Int("quantum", 64, "token padding quantum (shape bucket)")
	minTok := flag.Int("min-tokens", 16, "minimum request length")
	maxTok := flag.Int("max-tokens", 256, "maximum request length")
	meanTok := flag.Float64("mean-tokens", 0, "mean request length (0 = model sequence length)")
	outTok := flag.Int("out-tokens", 0, "fixed decode tokens per request (decoder models)")
	outTokMean := flag.Float64("out-tokens-mean", 0, "mean sampled decode tokens per request (overrides -out-tokens)")
	outTokMax := flag.Int("out-tokens-max", 0, "cap on sampled decode tokens (0 = 4x the mean)")
	par := flag.Int("j", 0, "host worker-pool size (0 = NumCPU); results are identical at any -j")
	sweepFlag := flag.String("sweep", "", "comma-separated arrival rates for a saturation sweep")
	designsFlag := flag.String("designs", "", "comma-separated designs for -sweep (default: -design)")
	jsonOut := flag.Bool("json", false, "emit JSON")
	csvOut := flag.Bool("csv", false, "emit CSV")
	hist := flag.Bool("hist", false, "print the latency histogram (table output only)")
	outPath := flag.String("o", "", "write output to this file instead of stdout")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (load in Perfetto or chrome://tracing)")
	traceSample := flag.Int("trace-sample", 1, "keep every N-th request's lifecycle span in the trace")
	metricsOut := flag.String("metrics-out", "", "write interval time-series metrics to this file (.json = JSON, else CSV)")
	metricsInterval := flag.Duration("metrics-interval", time.Second, "time-series sampling interval")
	auditFlag := flag.Bool("audit", false, "run the conservation auditor on the final report and fail on any violation")
	benchJSON := flag.String("bench-json", "", "run the simulator self-benchmark and write JSON to this path")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a post-GC pprof heap profile to this file at exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	profStop = stopProf
	defer stopProf()

	w := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON); err != nil {
			fatal(err)
		}
		return
	}

	if *sweepFlag != "" {
		err := runSweep(w, *sweepFlag, *designsFlag, *model, *fmtName, *design,
			*replicas, *ranks, *duration, *seed, *maxBatch, *sched, *quantum,
			*minTok, *maxTok, *meanTok, *outTok, *outTokMean, *outTokMax, *csvOut)
		if err != nil {
			fatal(err)
		}
		return
	}

	m, err := localut.ParseModel(*model)
	if err != nil {
		fatal(err)
	}
	f, err := localut.ParseFormat(*fmtName)
	if err != nil {
		fatal(err)
	}
	d, err := localut.ParseDesign(*design)
	if err != nil {
		fatal(err)
	}
	pol, err := localut.ParseSchedulerPolicy(*sched)
	if err != nil {
		fatal(err)
	}

	opts := []localut.Option{localut.WithSeed(*seed), localut.WithParallelism(*par)}
	if *ranks > 0 {
		opts = append(opts, localut.WithRanks(*ranks))
	}
	sys := localut.NewSystem(opts...)

	obsCfg, closeObs, err := buildObs(*traceOut, *traceSample, *metricsOut, metricsInterval.Seconds())
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	rep, err := sys.Serve(localut.ServeConfig{
		Model: m, Format: f, Design: d,
		Replicas:        *replicas,
		RatePerSec:      *rate,
		Clients:         *clients,
		ThinkSeconds:    think.Seconds(),
		DurationSeconds: duration.Seconds(),
		MaxBatch:        *maxBatch,
		Scheduler:       pol,
		MinTokens:       *minTok,
		MaxTokens:       *maxTok,
		MeanTokens:      *meanTok,
		TokenQuantum:    *quantum,
		OutTokens:       *outTok,
		OutTokensMean:   *outTokMean,
		OutTokensMax:    *outTokMax,
		Obs:             obsCfg,
	})
	if err != nil {
		fatal(err)
	}
	if err := closeObs(); err != nil {
		fatal(err)
	}
	wall := time.Since(start).Seconds()
	if *auditFlag {
		if err := auditServe(rep); err != nil {
			fatal(err)
		}
	}

	switch {
	case *jsonOut:
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	case *csvOut:
		if err := reportTable(rep).CSV(w); err != nil {
			fatal(err)
		}
	default:
		if err := reportTable(rep).Render(w); err != nil {
			fatal(err)
		}
		if *hist && len(rep.LatencyHistogram) > 0 {
			h := &trace.Histogram{Lo: 0, Hi: rep.LatencyHistogramHi, Counts: rep.LatencyHistogram}
			fmt.Fprintf(w, "\nlatency histogram (s):\n")
			if err := h.Render(w); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "simulated %d requests (%d batches, %d distinct forward sims) in %.2fs host wall-clock\n",
		rep.Requests, rep.Batches, rep.DistinctForwardSims, wall)
}

// auditServe reconstructs the appliance's conservation ledger from the
// public report — the utilizations are ratios of the underlying busy
// seconds, so multiplying them back out recovers the raw quantities —
// and fails on any violated invariant.
func auditServe(r *localut.ServeReport) error {
	busy := r.RankUtilization * float64(r.Replicas) * r.MakespanSeconds
	a := &audit.Appliance{
		Requests:        r.Requests,
		Completed:       r.Completed,
		Shed:            r.Requests - r.Completed,
		Replicas:        r.Replicas,
		MakespanSeconds: r.MakespanSeconds,
		BusySeconds:     busy,
		PIMBusySeconds:  r.PIMUtilization * busy,
		EnergyJ:         r.EnergyPerRequestJ * float64(r.Completed),
	}
	if vs := audit.CheckAppliance(a); len(vs) > 0 {
		var sb strings.Builder
		fmt.Fprintf(&sb, "conservation audit found %d violation(s)", len(vs))
		for _, v := range vs {
			sb.WriteString("\n  ")
			sb.WriteString(v.String())
		}
		return errors.New(sb.String())
	}
	fmt.Fprintln(os.Stderr, "conservation audit clean")
	return nil
}

// buildObs opens the requested trace/metrics outputs and returns the
// observability config plus a closer for the opened files.
func buildObs(tracePath string, sampleN int, metricsPath string, intervalSeconds float64) (localut.ObsConfig, func() error, error) {
	var cfg localut.ObsConfig
	var files []*os.File
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return cfg, nil, err
		}
		files = append(files, f)
		cfg.TraceWriter = f
		cfg.TraceSampleN = sampleN
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return cfg, nil, err
		}
		files = append(files, f)
		cfg.MetricsWriter = f
		cfg.MetricsIntervalSeconds = intervalSeconds
		cfg.MetricsJSON = strings.HasSuffix(metricsPath, ".json")
	}
	closer := func() error {
		for _, f := range files {
			if err := f.Close(); err != nil {
				return err
			}
		}
		return nil
	}
	return cfg, closer, nil
}

// reportTable flattens a serving report into a two-column table.
func reportTable(r *localut.ServeReport) *trace.Table {
	t := trace.NewTable(
		fmt.Sprintf("Serving %s %s on %s (%d replicas, %s scheduler)",
			r.Model, r.Format, r.Design, r.Replicas, r.Scheduler),
		"metric", "value")
	t.Add("requests", r.Requests)
	t.Add("completed", r.Completed)
	t.Add("batches", r.Batches)
	t.Add("mean batch size", r.MeanBatchSize)
	t.Add("offered (req/s)", r.OfferedPerSec)
	t.Add("throughput (req/s)", r.ThroughputPerSec)
	t.Add("arrival window (s)", r.DurationSeconds)
	t.Add("makespan (s)", r.MakespanSeconds)
	t.Add("queue p50/p95/p99 (s)", fmt.Sprintf("%.4g / %.4g / %.4g", r.Queue.P50, r.Queue.P95, r.Queue.P99))
	t.Add("service p50/p95/p99 (s)", fmt.Sprintf("%.4g / %.4g / %.4g", r.Service.P50, r.Service.P95, r.Service.P99))
	t.Add("latency p50/p95/p99 (s)", fmt.Sprintf("%.4g / %.4g / %.4g", r.Latency.P50, r.Latency.P95, r.Latency.P99))
	t.Add("latency mean/max (s)", fmt.Sprintf("%.4g / %.4g", r.Latency.Mean, r.Latency.Max))
	if r.DecodeSteps > 0 {
		t.Add("ttft p50/p95/p99 (s)", fmt.Sprintf("%.4g / %.4g / %.4g", r.TTFT.P50, r.TTFT.P95, r.TTFT.P99))
		t.Add("tpot p50/p95/p99 (s)", fmt.Sprintf("%.4g / %.4g / %.4g", r.TPOT.P50, r.TPOT.P95, r.TPOT.P99))
		t.Add("decode steps", r.DecodeSteps)
		t.Add("kv peak/capacity (bytes)", fmt.Sprintf("%d / %d (%.4g)",
			r.KVPeakBytes, r.KVCapacityBytes, r.KVPeakUtilization))
		t.Add("kv mean per replica (bytes)", fmt.Sprintf("%.4g (%.4g of capacity)",
			r.KVMeanBytes, r.KVMeanUtilization))
	}
	t.Add("rank utilization", r.RankUtilization)
	t.Add("pim share of busy time", r.PIMUtilization)
	t.Add("tokens in/padded/out", fmt.Sprintf("%d / %d / %d", r.TokensIn, r.TokensPadded, r.TokensOut))
	t.Add("tokens/s", r.TokensPerSec)
	t.Add("energy/request (J)", r.EnergyPerRequestJ)
	t.Add("distinct forward sims", r.DistinctForwardSims)
	return t
}

// runSweep drives the experiments saturation-curve driver.
func runSweep(w io.Writer, rates, designsCSV, model, fmtName, design string,
	replicas, ranks int, duration time.Duration, seed int64, maxBatch int,
	sched string, quantum, minTok, maxTok int, meanTok float64, outTok int,
	outTokMean float64, outTokMax int, csvOut bool) error {

	rateVals, err := parseRates(rates)
	if err != nil {
		return err
	}
	mc, err := modelConfig(model)
	if err != nil {
		return err
	}
	f, err := quant.ParseFormat(fmtName)
	if err != nil {
		return err
	}
	if designsCSV == "" {
		designsCSV = design
	}
	var designs []kernels.Variant
	for _, name := range strings.Split(designsCSV, ",") {
		v, err := variantByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		designs = append(designs, v)
	}
	pol, err := serve.ParsePolicy(strings.ToLower(sched))
	if err != nil {
		return err
	}

	base := serve.Config{
		Model: mc, Fmt: f,
		Replicas:        replicas,
		DurationSeconds: duration.Seconds(),
		Seed:            seed,
		MaxBatch:        maxBatch,
		Scheduler:       pol,
		MinTokens:       minTok,
		MaxTokens:       maxTok,
		MeanTokens:      meanTok,
		TokenQuantum:    quantum,
		OutTokens:       outTok,
		OutTokensMean:   outTokMean,
		OutTokensMax:    outTokMax,
	}
	if ranks > 0 {
		eng := gemm.NewEngine()
		eng.Cfg.Ranks = ranks
		base.Engine = eng
	}

	start := time.Now()
	points, err := experiments.ServingCurve(base, designs, rateVals)
	if err != nil {
		return err
	}
	table := experiments.ServingTable(
		fmt.Sprintf("Latency–throughput saturation: %s %s, %v replicas, %s scheduler, %s window",
			mc.Name, f.Name(), base.Replicas, pol, duration), points)
	if csvOut {
		if err := table.CSV(w); err != nil {
			return err
		}
	} else if err := table.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%d sweep points in %.2fs host wall-clock\n",
		len(points), time.Since(start).Seconds())
	return nil
}

// benchScenario is one timed self-benchmark workload: how fast the
// serving simulator itself runs, tracked across PRs alongside
// BENCH_kernels.json.
type benchScenario struct {
	Model            string  `json:"model"`
	RatePerSec       float64 `json:"rate_per_sec"`
	DurationSeconds  float64 `json:"duration_s"`
	Requests         int     `json:"requests"`
	Batches          int     `json:"batches"`
	DecodeSteps      int     `json:"decode_steps"`
	TokensOut        int64   `json:"tokens_out"`
	DistinctSims     int     `json:"distinct_forward_sims"`
	WallSeconds      float64 `json:"wall_seconds"`
	RequestsPerSec   float64 `json:"requests_per_sec"`
	SimSecondsPerSec float64 `json:"simulated_seconds_per_wall_second"`
}

// benchReport pairs the prefill-only acceptance workload with a
// decode-heavy one, so step-level decode performance is tracked too.
type benchReport struct {
	Prefill benchScenario `json:"prefill"`
	Decode  benchScenario `json:"decode"`
}

// benchRun times one scenario.
func benchRun(cfg localut.ServeConfig) (benchScenario, error) {
	sys := localut.NewSystem(localut.WithSeed(1))
	start := time.Now()
	rep, err := sys.Serve(cfg)
	if err != nil {
		return benchScenario{}, err
	}
	wall := time.Since(start).Seconds()
	out := benchScenario{
		Model:           rep.Model,
		RatePerSec:      cfg.RatePerSec,
		DurationSeconds: cfg.DurationSeconds,
		Requests:        rep.Requests,
		Batches:         rep.Batches,
		DecodeSteps:     rep.DecodeSteps,
		TokensOut:       rep.TokensOut,
		DistinctSims:    rep.DistinctForwardSims,
		WallSeconds:     wall,
	}
	if wall > 0 {
		out.RequestsPerSec = float64(rep.Requests) / wall
		out.SimSecondsPerSec = rep.MakespanSeconds / wall
	}
	return out, nil
}

// runBenchJSON times the acceptance workloads: a 60-second window at 2000
// req/s (>= 100k requests) on BERT-base, and a decode-heavy OPT-125M run
// whose cost is dominated by token-level decode steps.
func runBenchJSON(path string) error {
	prefill, err := benchRun(localut.ServeConfig{
		Model: localut.BERTBase, Format: localut.W1A3, Design: localut.DesignLoCaLUT,
		RatePerSec:      2000,
		DurationSeconds: 60,
		Scheduler:       localut.SchedulePacked, // the CLI's default workload
	})
	if err != nil {
		return err
	}
	decode, err := benchRun(localut.ServeConfig{
		Model: localut.OPT125M, Format: localut.W1A3, Design: localut.DesignLoCaLUT,
		RatePerSec:      200,
		DurationSeconds: 60,
		Scheduler:       localut.SchedulePacked,
		OutTokensMean:   32,
		OutTokensMax:    128,
	})
	if err != nil {
		return err
	}
	out := benchReport{Prefill: prefill, Decode: decode}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (prefill: %d requests in %.2fs, %.0f req/s; decode: %d steps in %.2fs)\n",
		path, prefill.Requests, prefill.WallSeconds, prefill.RequestsPerSec,
		decode.DecodeSteps, decode.WallSeconds)
	return nil
}

// parseRates parses "25,50,100".
func parseRates(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad -sweep rate %q (want positive numbers)", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// modelConfig maps CLI names to dnn configs for the internal sweep path.
func modelConfig(name string) (dnn.ModelConfig, error) {
	switch strings.ToLower(name) {
	case "bert-base":
		return dnn.BERTBase(), nil
	case "opt-125m":
		return dnn.OPT125M(), nil
	case "vit-base":
		return dnn.ViTBase(), nil
	}
	return dnn.ModelConfig{}, fmt.Errorf("unknown model %q (want bert-base, opt-125m or vit-base)", name)
}

// variantByName resolves a design by its paper name, case-insensitively.
func variantByName(s string) (kernels.Variant, error) {
	for _, v := range kernels.Variants {
		if strings.EqualFold(s, v.String()) {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown design %q", s)
}

// profStop flushes any active pprof collectors before an error exit, so a
// failing profiled run still leaves usable profiles. Idempotent; the
// success path defers the same stop.
var profStop = func() {}

func fatal(err error) {
	profStop()
	fmt.Fprintln(os.Stderr, "localut-serve:", err)
	os.Exit(1)
}
