package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/ais-snu/localut"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenConfig is the fixed workload behind the -json regression test: a
// small decode-heavy run touching every report section (TTFT/TPOT, KV
// gauge, histogram-free path).
func goldenConfig() localut.ServeConfig {
	return localut.ServeConfig{
		Model: localut.OPT125M, Format: localut.W1A3, Design: localut.DesignLoCaLUT,
		RatePerSec:      40,
		DurationSeconds: 5,
		Scheduler:       localut.SchedulePacked,
		OutTokensMean:   8,
		OutTokensMax:    32,
	}
}

// renderJSON produces exactly what `localut-serve -json` writes: the
// report through an indenting encoder.
func renderJSON(t *testing.T, cfg localut.ServeConfig) []byte {
	t.Helper()
	sys := localut.NewSystem(localut.WithSeed(1))
	rep, err := sys.Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestServeJSONGolden pins the -json output byte for byte on a fixed
// seed and config. A diff means either the report schema or the
// simulation's numbers changed — both must be deliberate; run
// `go test ./cmd/localut-serve -update` to re-bless.
func TestServeJSONGolden(t *testing.T) {
	got := renderJSON(t, goldenConfig())
	path := filepath.Join("testdata", "serve_opt125m_w1a3.golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSON report drifted from %s (re-bless with -update if intentional)\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestServeJSONGoldenStable guards the golden test itself: two fresh
// systems must render identical bytes, or the golden file would flake.
func TestServeJSONGoldenStable(t *testing.T) {
	a := renderJSON(t, goldenConfig())
	b := renderJSON(t, goldenConfig())
	if !bytes.Equal(a, b) {
		t.Fatal("same config rendered different JSON across runs")
	}
}

// TestParseRates covers the sweep-flag parser's error paths.
func TestParseRates(t *testing.T) {
	if got, err := parseRates("25, 50,100"); err != nil || len(got) != 3 || got[2] != 100 {
		t.Errorf("parseRates = %v, %v", got, err)
	}
	for _, bad := range []string{"", "a", "10,-5", "10,,20", "0"} {
		if _, err := parseRates(bad); err == nil {
			t.Errorf("parseRates(%q) accepted", bad)
		}
	}
}

// TestReportTableSections sanity-checks the table renderer against a tiny
// run (decode rows must appear for decoder workloads).
func TestReportTableSections(t *testing.T) {
	sys := localut.NewSystem(localut.WithSeed(1))
	cfg := goldenConfig()
	cfg.DurationSeconds = 1
	rep, err := sys.Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := reportTable(rep).Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, row := range []string{"throughput (req/s)", "ttft p50/p95/p99 (s)", "decode steps", "distinct forward sims"} {
		if !bytes.Contains([]byte(out), []byte(row)) {
			t.Errorf("table missing row %q:\n%s", row, out)
		}
	}
}
