// Command localut-lutgen inspects the LUT family for a format and packing
// degree: capacity laws, residence feasibility on the UPMEM-class machine,
// and (optionally) a dump of canonical/reordering LUT entries — the
// "procedures for generating both the canonical LUT and the reordering
// LUT" of the paper's artifact.
//
// Usage:
//
//	localut-lutgen -fmt W1A3 [-p 4] [-dump 8]
package main

import (
	"flag"
	"fmt"
	"os"

	"github.com/ais-snu/localut"
)

func main() {
	fmtName := flag.String("fmt", "W1A3", "quantization format")
	p := flag.Int("p", 0, "packing degree (0 = table across all feasible p)")
	dump := flag.Int("dump", 0, "print the first N canonical columns' contents")
	flag.Parse()

	f, err := localut.ParseFormat(*fmtName)
	if err != nil {
		fatal(err)
	}

	if *p == 0 {
		sys := localut.NewSystem()
		plan, err := sys.ChoosePlan(f, 3072, 768, 128)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: p_local=%d, p_DRAM=%d on the UPMEM-class machine\n\n", f.Name(), plan.PLocal, plan.PDRAM)
		fmt.Printf("%3s %16s %14s %14s %12s %10s %10s\n",
			"p", "op-packed (B)", "canonical (B)", "reorder (B)", "combined (B)", "reduction", "slice (B)")
		for pp := 1; pp <= plan.PDRAM; pp++ {
			c, err := localut.LUTCapacity(f, pp)
			if err != nil {
				break
			}
			fmt.Printf("%3d %16d %14d %14d %12d %9.1fx %10d\n",
				pp, c.OperationPackedByte, c.CanonicalBytes, c.ReorderBytes,
				c.CombinedBytes, c.ReductionRate, c.SliceBytes)
		}
		return
	}

	c, err := localut.LUTCapacity(f, *p)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s p=%d: canonical %d B (+ reordering %d B) vs operation-packed %d B — %.1fx reduction\n",
		f.Name(), *p, c.CanonicalBytes, c.ReorderBytes, c.OperationPackedByte, c.ReductionRate)

	if *dump > 0 {
		cols, err := localut.DumpCanonicalColumns(f, *p, *dump)
		if err != nil {
			fatal(err)
		}
		for _, col := range cols {
			fmt.Println(col)
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "localut-lutgen:", err)
	os.Exit(1)
}
