// Command determlint proves the project's determinism invariants at
// build time. It runs the four-house-analyzer suite (maporder,
// walltime, rngstream, nilrecv — see internal/analysis/determlint) in
// two modes:
//
//	determlint [packages]        standalone: analyze Go packages in the
//	                             current module (default ./...) and print
//	                             findings; exit 1 if any.
//
//	go vet -vettool=$(which determlint) ./...
//	                             vettool: determlint speaks go vet's
//	                             unitchecker protocol (-V=full, -flags,
//	                             and per-package *.cfg invocations), so
//	                             CI can run it through the standard vet
//	                             driver with build caching.
//
// A finding is silenced only by an inline suppression carrying a
// reason, e.g. //determlint:ordered keys are sorted two lines up — a
// bare suppression is ignored and the diagnostic stays.
package main

import (
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"github.com/ais-snu/localut/internal/analysis"
	"github.com/ais-snu/localut/internal/analysis/determlint"
	"github.com/ais-snu/localut/internal/analysis/loader"
)

func main() {
	args := os.Args[1:]
	// go vet protocol: version and flag discovery probes.
	if len(args) == 1 {
		switch {
		case strings.HasPrefix(args[0], "-V"):
			// cmd/go parses `<tool> version <id>` to build its cache key.
			fmt.Printf("%s version %s determlint\n", os.Args[0], runtime.Version())
			return
		case args[0] == "-flags":
			fmt.Println("[]")
			return
		case strings.HasSuffix(args[0], ".cfg"):
			os.Exit(runUnit(args[0]))
		}
	}
	os.Exit(runStandalone(args))
}

// runStandalone analyzes package patterns in the current module.
func runStandalone(patterns []string) int {
	dir, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "determlint:", err)
		return 2
	}
	findings, err := determlint.Check(dir, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "determlint:", err)
		return 2
	}
	for _, f := range findings {
		fmt.Println(f)
	}
	if len(findings) > 0 {
		fmt.Fprintf(os.Stderr, "determlint: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

// vetConfig is the JSON unit description go vet hands a vettool,
// mirroring x/tools' unitchecker.Config.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one package unit as directed by a go vet cfg file.
func runUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "determlint:", err)
		return 2
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "determlint: parsing %s: %v\n", cfgPath, err)
		return 2
	}
	// go vet caches analysis facts through the vetx file; determlint has
	// no facts, but the file must exist for the driver's bookkeeping.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("determlint\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "determlint:", err)
			return 2
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency pass: facts only, no diagnostics wanted
	}
	if cfg.Compiler != "" && cfg.Compiler != "gc" {
		fmt.Fprintf(os.Stderr, "determlint: unsupported compiler %q\n", cfg.Compiler)
		return 2
	}
	// The determinism contract binds the simulator, not its tests; skip
	// _test.go files so vet's test variants add nothing new.
	var files []string
	for _, f := range cfg.GoFiles {
		if !strings.HasSuffix(f, "_test.go") {
			files = append(files, f)
		}
	}
	if len(files) == 0 {
		return 0
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("determlint: no export data for %q", path)
		}
		return os.Open(file)
	}
	pkg, err := loader.TypeCheck(token.NewFileSet(), cfg.ImportPath, absFiles(cfg.Dir, files), nil, lookup)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "determlint: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	diags, err := analysis.Run(pkg.Fset, pkg.Files, pkg.Pkg, pkg.TypesInfo, determlint.For(cfg.ImportPath))
	if err != nil {
		fmt.Fprintf(os.Stderr, "determlint: %s: %v\n", cfg.ImportPath, err)
		return 2
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.Format(pkg.Fset))
	}
	if len(diags) > 0 {
		return 2 // any nonzero status fails `go vet`
	}
	return 0
}

func absFiles(dir string, files []string) []string {
	out := make([]string, len(files))
	for i, f := range files {
		if filepath.IsAbs(f) {
			out[i] = f
		} else {
			out[i] = filepath.Join(dir, f)
		}
	}
	return out
}
