package main_test

import (
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// TestGoVetVettool builds determlint and drives it through the real
// `go vet -vettool` protocol over the whole module — the exact
// invocation CI uses. It proves the unitchecker handshake (-V=full,
// per-package cfg files, vetx outputs) works against this toolchain and
// that the tree is clean through that path too.
func TestGoVetVettool(t *testing.T) {
	if testing.Short() {
		t.Skip("builds the tool and vets the whole module")
	}
	out, err := exec.Command("go", "env", "GOMOD").Output()
	if err != nil {
		t.Fatalf("go env GOMOD: %v", err)
	}
	root := filepath.Dir(strings.TrimSpace(string(out)))

	bin := filepath.Join(t.TempDir(), "determlint")
	build := exec.Command("go", "build", "-o", bin, "./cmd/determlint")
	build.Dir = root
	if msg, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building determlint: %v\n%s", err, msg)
	}

	vet := exec.Command("go", "vet", "-vettool="+bin, "./...")
	vet.Dir = root
	if msg, err := vet.CombinedOutput(); err != nil {
		t.Fatalf("go vet -vettool reported findings or failed: %v\n%s", err, msg)
	}
}
