// Command localut-cluster runs the cluster-scale serving simulator: a
// routed fleet of LoCaLUT appliances — each a full request-level serving
// instance — behind pluggable admission control and a reactive
// autoscaler, driven by one shared discrete-event clock. Reports are
// byte-identical for a given seed at any -j, including mid-run
// scale-up/scale-down.
//
// Usage:
//
//	localut-cluster -model bert-base -instances 8 -rate 2000 -duration 60s
//	localut-cluster -model opt-125m -out-tokens 8 -router weighted-kv -instances 4
//	localut-cluster -classes "interactive:300:200,batch:100" -admission token-bucket
//	localut-cluster -autoscale -slo 0.5 -instances 1 -max-instances 8 -rate 400
//	localut-cluster -designs "OP+LC+RC,LoCaLUT" -router shape-affinity
//	localut-cluster -sweep 500,1000,2000 -fleets 2,4,8
//	localut-cluster -bench-json BENCH_cluster.json
//
// Output is a summary table plus per-instance and per-class sections;
// -json and -csv switch formats, -o writes to a file.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
	"time"

	"github.com/ais-snu/localut"
	"github.com/ais-snu/localut/internal/cluster"
	"github.com/ais-snu/localut/internal/dnn"
	"github.com/ais-snu/localut/internal/experiments"
	"github.com/ais-snu/localut/internal/gemm"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/prof"
	"github.com/ais-snu/localut/internal/quant"
	"github.com/ais-snu/localut/internal/serve"
	"github.com/ais-snu/localut/internal/trace"
)

func main() {
	model := flag.String("model", "bert-base", "model: bert-base, opt-125m or vit-base")
	fmtName := flag.String("fmt", "W1A3", "quantization format (WxAy)")
	design := flag.String("design", "LoCaLUT", "kernel design point")
	designsFlag := flag.String("designs", "", "comma-separated designs cycled over instance IDs (heterogeneous fleet)")
	instances := flag.Int("instances", 2, "initial fleet size")
	replicas := flag.Int("replicas", 4, "serving groups per appliance")
	ranks := flag.Int("ranks", 0, "override each appliance's rank count (0 = testbed 32)")
	routerName := flag.String("router", "round-robin", "router: round-robin, least-outstanding, weighted-kv or shape-affinity")
	admissionName := flag.String("admission", "admit-all", "admission: admit-all or token-bucket")
	rate := flag.Float64("rate", 100, "open-loop Poisson arrival rate (requests/sec, single default class)")
	classesFlag := flag.String("classes", "", `SLO classes as "name:rate[:admitRate]" pairs, comma-separated (overrides -rate)`)
	duration := flag.Duration("duration", 60*time.Second, "arrival window")
	seed := flag.Int64("seed", 1, "workload seed")
	maxBatch := flag.Int("max-batch", 8, "requests per batch")
	sched := flag.String("scheduler", "packed", "batch scheduler: fcfs or packed")
	quantum := flag.Int("quantum", 64, "token padding quantum (shape bucket)")
	minTok := flag.Int("min-tokens", 16, "minimum request length")
	maxTok := flag.Int("max-tokens", 256, "maximum request length")
	meanTok := flag.Float64("mean-tokens", 0, "mean request length (0 = model sequence length)")
	outTok := flag.Int("out-tokens", 0, "fixed decode tokens per request (decoder models)")
	outTokMean := flag.Float64("out-tokens-mean", 0, "mean sampled decode tokens per request (overrides -out-tokens)")
	outTokMax := flag.Int("out-tokens-max", 0, "cap on sampled decode tokens (0 = 4x the mean)")
	autoscale := flag.Bool("autoscale", false, "enable the reactive autoscaler")
	slo := flag.Float64("slo", 0, "autoscaler response-start p99 target in seconds (required with -autoscale)")
	minInst := flag.Int("min-instances", 0, "autoscaler floor (0 = 1)")
	maxInst := flag.Int("max-instances", 0, "autoscaler ceiling (0 = 4x initial)")
	interval := flag.Duration("interval", 0, "autoscaler control period (0 = 5s)")
	warmup := flag.Duration("warmup", 0, "launched-instance warm-up delay (0 = 2s)")
	drain := flag.Duration("drain", 0, "retirement delay after an instance empties (0 = 1s)")
	mttf := flag.Float64("mttf", 0, "per-instance mean time to failure in seconds (0 = no fault injection)")
	mttr := flag.Float64("mttr", 0, "mean repair delay in seconds (0 = 5)")
	domains := flag.Int("domains", 0, "correlated failure domains; instances map to domains by ID modulo this count (0 = off)")
	domainMTBF := flag.Float64("domain-mtbf", 0, "per-domain mean time between correlated outages in seconds (required with -domains)")
	domainMTTR := flag.Float64("domain-mttr", 0, "mean domain repair delay in seconds (0 = 10)")
	stragglerMTBF := flag.Float64("straggler-mtbf", 0, "per-member mean time between gray-failure straggler windows in seconds (0 = off)")
	stragglerDur := flag.Float64("straggler-duration", 0, "mean straggler window length in seconds (0 = 5)")
	stragglerSlow := flag.Float64("straggler-slowdown", 0, "pass-cost multiplier inside a straggler window (0 = 4)")
	hedgeDelay := flag.Float64("hedge-delay", 0, "duplicate a request still waiting for its first token after this many seconds (0 = hedging off)")
	auditFlag := flag.Bool("audit", false, "run the conservation auditor on the final report and fail on any violation")
	chaosN := flag.Int("chaos", 0, "chaos seed sweep: run N seeds across three failure scenarios with the auditor on, failing on any violation")
	hedgeSweepFlag := flag.String("hedge-sweep", "", "comma-separated hedge delays (seconds; 0 = no-hedge baseline) for a tail-latency sweep under straggler injection")
	degraded := flag.Float64("degraded", 0, "fraction of faults that degrade one replica instead of crashing")
	rematGBps := flag.Float64("remat-gbps", 0, "LUT re-materialization write bandwidth in GB/s (0 = 16)")
	deadline := flag.Float64("deadline", 0, "default per-request completion deadline in seconds (0 = none)")
	retries := flag.Int("retries", 0, "max service attempts per request (0 = 3)")
	retryBackoff := flag.Float64("retry-backoff", 0, "first retry backoff in seconds (0 = 0.05)")
	maxQueue := flag.Int("max-queue", 0, "per-instance admission queue bound (0 = unbounded)")
	kvPolicy := flag.String("kv", "gauge", "KV budget policy: gauge, stall or shed")
	par := flag.Int("j", 0, "host worker-pool size (0 = NumCPU); results are identical at any -j")
	sweepFlag := flag.String("sweep", "", "comma-separated arrival rates for a fleet-scaling sweep")
	fleetsFlag := flag.String("fleets", "", "comma-separated fleet sizes for -sweep (default: -instances)")
	mttfSweep := flag.String("mttf-sweep", "", "comma-separated MTTF values (seconds; 0 = fault-free baseline) for a reliability sweep")
	jsonOut := flag.Bool("json", false, "emit JSON")
	csvOut := flag.Bool("csv", false, "emit CSV")
	timeline := flag.Bool("timeline", false, "print the unified fleet timeline (table output only)")
	outPath := flag.String("o", "", "write output to this file instead of stdout")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (load in Perfetto or chrome://tracing)")
	traceSample := flag.Int("trace-sample", 1, "keep every N-th request's lifecycle span in the trace")
	metricsOut := flag.String("metrics-out", "", "write interval time-series metrics to this file (.json = JSON, else CSV)")
	metricsInterval := flag.Duration("metrics-interval", time.Second, "time-series sampling interval")
	benchJSON := flag.String("bench-json", "", "run the cluster self-benchmark and write JSON to this path")
	benchFaultsJSON := flag.String("bench-faults-json", "", "run the faulted-fleet self-benchmark and write JSON to this path")
	benchObsJSON := flag.String("bench-obs-json", "", "run the observability-overhead self-benchmark and write JSON to this path")
	benchChaosJSON := flag.String("bench-chaos-json", "", "run the chaos-fleet self-benchmark (domains + stragglers + hedging, audited) and write JSON to this path")
	maxObsOverheadUS := flag.Float64("max-obs-overhead-us", 0, "fail -bench-obs-json when full recording costs more than this per admitted request, in microseconds (0 = no gate)")
	cpuProfile := flag.String("cpuprofile", "", "write a pprof CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a post-GC pprof heap profile to this file at exit")
	flag.Parse()

	stopProf, err := prof.Start(*cpuProfile, *memProfile)
	if err != nil {
		fatal(err)
	}
	profStop = stopProf
	defer stopProf()

	w := io.Writer(os.Stdout)
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}

	if *benchJSON != "" {
		if err := runBenchJSON(*benchJSON); err != nil {
			fatal(err)
		}
		return
	}
	if *benchFaultsJSON != "" {
		if err := runBenchFaultsJSON(*benchFaultsJSON); err != nil {
			fatal(err)
		}
		return
	}
	if *benchObsJSON != "" {
		if err := runBenchObsJSON(*benchObsJSON, *maxObsOverheadUS); err != nil {
			fatal(err)
		}
		return
	}
	if *benchChaosJSON != "" {
		if err := runBenchChaosJSON(*benchChaosJSON); err != nil {
			fatal(err)
		}
		return
	}

	if *chaosN > 0 {
		if err := runChaos(w, *chaosN, *par, *jsonOut, *csvOut); err != nil {
			fatal(err)
		}
		return
	}

	if *hedgeSweepFlag != "" {
		err := runHedgeSweep(w, *hedgeSweepFlag, *model, *fmtName, *design,
			*instances, *replicas, *ranks, *routerName, *admissionName,
			*rate, *duration, *seed, *maxBatch, *sched, *quantum,
			*minTok, *maxTok, *meanTok, *outTok, *outTokMean, *outTokMax,
			*deadline, *stragglerMTBF, *stragglerDur, *stragglerSlow,
			*auditFlag, *csvOut)
		if err != nil {
			fatal(err)
		}
		return
	}

	if *mttfSweep != "" {
		err := runMTTFSweep(w, *mttfSweep, *model, *fmtName, *design, *designsFlag,
			*instances, *replicas, *ranks, *routerName, *admissionName,
			*rate, *duration, *seed, *maxBatch, *sched, *quantum,
			*minTok, *maxTok, *meanTok, *outTok, *outTokMean, *outTokMax,
			*mttr, *degraded, *rematGBps, *deadline, *retries, *retryBackoff,
			*maxQueue, *kvPolicy, *csvOut)
		if err != nil {
			fatal(err)
		}
		return
	}

	if *sweepFlag != "" {
		err := runSweep(w, *sweepFlag, *fleetsFlag, *model, *fmtName, *design,
			*instances, *replicas, *ranks, *routerName, *admissionName,
			*duration, *seed, *maxBatch, *sched, *quantum,
			*minTok, *maxTok, *meanTok, *outTok, *outTokMean, *outTokMax, *csvOut)
		if err != nil {
			fatal(err)
		}
		return
	}

	m, err := localut.ParseModel(*model)
	if err != nil {
		fatal(err)
	}
	f, err := localut.ParseFormat(*fmtName)
	if err != nil {
		fatal(err)
	}
	d, err := localut.ParseDesign(*design)
	if err != nil {
		fatal(err)
	}
	pol, err := localut.ParseSchedulerPolicy(*sched)
	if err != nil {
		fatal(err)
	}
	rt, err := localut.ParseRouterPolicy(*routerName)
	if err != nil {
		fatal(err)
	}
	adm, err := localut.ParseAdmissionPolicy(*admissionName)
	if err != nil {
		fatal(err)
	}
	kv, err := localut.ParseKVPolicy(*kvPolicy)
	if err != nil {
		fatal(err)
	}
	var designs []localut.Design
	if *designsFlag != "" {
		for _, name := range strings.Split(*designsFlag, ",") {
			dd, err := localut.ParseDesign(strings.TrimSpace(name))
			if err != nil {
				fatal(err)
			}
			designs = append(designs, dd)
		}
	}
	classes, err := parseClasses(*classesFlag)
	if err != nil {
		fatal(err)
	}

	opts := []localut.Option{localut.WithSeed(*seed), localut.WithParallelism(*par)}
	if *ranks > 0 {
		opts = append(opts, localut.WithRanks(*ranks))
	}
	sys := localut.NewSystem(opts...)

	obsCfg, closeObs, err := buildObs(*traceOut, *traceSample, *metricsOut, metricsInterval.Seconds())
	if err != nil {
		fatal(err)
	}

	start := time.Now()
	rep, err := sys.ServeCluster(localut.ClusterConfig{
		Model: m, Format: f, Design: d, Designs: designs,
		Instances:       *instances,
		Replicas:        *replicas,
		Router:          rt,
		Admission:       adm,
		Classes:         classes,
		RatePerSec:      *rate,
		DurationSeconds: duration.Seconds(),
		MaxBatch:        *maxBatch,
		Scheduler:       pol,
		MinTokens:       *minTok,
		MaxTokens:       *maxTok,
		MeanTokens:      *meanTok,
		TokenQuantum:    *quantum,
		OutTokens:       *outTok,
		OutTokensMean:   *outTokMean,
		OutTokensMax:    *outTokMax,
		MaxQueue:        *maxQueue,
		KVPolicy:        kv,
		Faults: localut.ClusterFaults{
			Enabled:          *mttf > 0,
			MTTFSeconds:      *mttf,
			MTTRSeconds:      *mttr,
			DegradedFraction: *degraded,
			LUTRematGBps:     *rematGBps,
		},
		Domains: localut.ClusterDomains{
			Enabled:     *domains > 0,
			Count:       *domains,
			MTBFSeconds: *domainMTBF,
			MTTRSeconds: *domainMTTR,
		},
		Stragglers: localut.ClusterStragglers{
			Enabled:             *stragglerMTBF > 0,
			MTBFSeconds:         *stragglerMTBF,
			MeanDurationSeconds: *stragglerDur,
			Slowdown:            *stragglerSlow,
		},
		Hedge: localut.ClusterHedge{
			Enabled:      *hedgeDelay > 0,
			DelaySeconds: *hedgeDelay,
		},
		Audit:     *auditFlag,
		Deadlines: localut.ClusterDeadlines{DefaultSeconds: *deadline},
		Retry: localut.ClusterRetry{
			MaxAttempts:    *retries,
			BackoffSeconds: *retryBackoff,
		},
		Autoscaler: localut.ClusterAutoscaler{
			Enabled:         *autoscale,
			MinInstances:    *minInst,
			MaxInstances:    *maxInst,
			IntervalSeconds: interval.Seconds(),
			SLOSeconds:      *slo,
			WarmupSeconds:   warmup.Seconds(),
			DrainSeconds:    drain.Seconds(),
		},
		Obs: obsCfg,
	})
	if err != nil {
		fatal(err)
	}
	if err := closeObs(); err != nil {
		fatal(err)
	}
	wall := time.Since(start).Seconds()

	switch {
	case *jsonOut:
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fatal(err)
		}
	case *csvOut:
		if err := summaryTable(rep).CSV(w); err != nil {
			fatal(err)
		}
		if err := instanceTable(rep).CSV(w); err != nil {
			fatal(err)
		}
		if err := classTable(rep).CSV(w); err != nil {
			fatal(err)
		}
	default:
		for _, t := range []*trace.Table{summaryTable(rep), instanceTable(rep), classTable(rep)} {
			if err := t.Render(w); err != nil {
				fatal(err)
			}
			fmt.Fprintln(w)
		}
		if *timeline && len(rep.Timeline) > 0 {
			if err := timelineTable(rep).Render(w); err != nil {
				fatal(err)
			}
		}
	}
	fmt.Fprintf(os.Stderr, "simulated %d requests over %d instances (peak %d, %d distinct forward sims) in %.2fs host wall-clock\n",
		rep.Admitted, len(rep.Instances), rep.InstancesPeak, rep.DistinctForwardSims, wall)
}

// summaryTable flattens the cluster-wide metrics.
func summaryTable(r *localut.ClusterReport) *trace.Table {
	t := trace.NewTable(
		fmt.Sprintf("Cluster serving %s %s (%d instances, %s router, %s admission)",
			r.Model, r.Format, r.InstancesInitial, r.Router, r.Admission),
		"metric", "value")
	t.Add("offered", r.Offered)
	t.Add("admitted", r.Admitted)
	t.Add("rejected", r.Rejected)
	t.Add("completed", r.Completed)
	t.Add("instances initial/peak/final", fmt.Sprintf("%d / %d / %d",
		r.InstancesInitial, r.InstancesPeak, r.InstancesFinal))
	t.Add("offered (req/s)", r.OfferedPerSec)
	t.Add("throughput (req/s)", r.ThroughputPerSec)
	t.Add("goodput (req/s)", r.GoodputPerSec)
	t.Add("good / late / shed", fmt.Sprintf("%d / %d / %d", r.Good, r.DeadlineMisses, r.Shed))
	if r.Shed > 0 {
		t.Add("shed expired/kv/queue/retries", fmt.Sprintf("%d / %d / %d / %d",
			r.ShedExpired, r.ShedKV, r.ShedQueueFull, r.ShedRetries))
	}
	t.Add("retries", r.Retries)
	t.Add("reprefill tokens", r.ReprefillTokens)
	if r.Crashes > 0 || r.DegradedEvents > 0 {
		t.Add("crashes / degraded", fmt.Sprintf("%d / %d", r.Crashes, r.DegradedEvents))
		t.Add("unavailable (s)", r.UnavailableSeconds)
		t.Add("time-to-recover p50/p99 (s)", fmt.Sprintf("%.4g / %.4g",
			r.TimeToRecover.P50, r.TimeToRecover.P99))
		t.Add("lut remat per recovery (s)", r.LUTRematSeconds)
	}
	if r.DomainOutages > 0 {
		t.Add("domain outages / overlap extensions", fmt.Sprintf("%d / %d",
			r.DomainOutages, r.DomainOverlapExtensions))
	}
	if r.StragglerWindows > 0 {
		t.Add("straggler windows", r.StragglerWindows)
	}
	if r.HedgesIssued > 0 {
		t.Add("hedges issued/wins/cancels/drops", fmt.Sprintf("%d / %d / %d / %d",
			r.HedgesIssued, r.HedgeWins, r.HedgeCancels, r.HedgeDrops))
		if r.BusySeconds > 0 {
			t.Add("hedge waste (s)", fmt.Sprintf("%.4g (%.4g of busy)",
				r.HedgeWastedSeconds, r.HedgeWastedSeconds/r.BusySeconds))
		}
	}
	t.Add("tokens/s", r.TokensPerSec)
	t.Add("arrival window (s)", r.DurationSeconds)
	t.Add("makespan (s)", r.MakespanSeconds)
	t.Add("latency p50/p95/p99 (s)", fmt.Sprintf("%.4g / %.4g / %.4g",
		r.Latency.P50, r.Latency.P95, r.Latency.P99))
	if r.TTFT.P99 > 0 {
		t.Add("ttft p50/p95/p99 (s)", fmt.Sprintf("%.4g / %.4g / %.4g",
			r.TTFT.P50, r.TTFT.P95, r.TTFT.P99))
		t.Add("tpot p50/p95/p99 (s)", fmt.Sprintf("%.4g / %.4g / %.4g",
			r.TPOT.P50, r.TPOT.P95, r.TPOT.P99))
	}
	t.Add("tokens in/padded/out", fmt.Sprintf("%d / %d / %d", r.TokensIn, r.TokensPadded, r.TokensOut))
	if r.KVMeanBytes > 0 {
		t.Add("kv mean per replica (bytes)", fmt.Sprintf("%.4g (%.4g of capacity)",
			r.KVMeanBytes, r.KVMeanUtilization))
	}
	t.Add("energy/request (J)", r.EnergyPerRequestJ)
	t.Add("distinct forward sims", r.DistinctForwardSims)
	return t
}

// instanceTable lists the per-instance breakdown.
func instanceTable(r *localut.ClusterReport) *trace.Table {
	t := trace.NewTable("Per-instance breakdown",
		"instance", "design", "requests", "completed", "shed", "crashes",
		"unavail (s)", "batches", "batch size",
		"util", "pim share", "tokens out", "energy (J)", "up (s)", "down (s)")
	for _, ir := range r.Instances {
		t.Add(ir.ID, ir.Design, ir.Requests, ir.Completed, ir.Shed, ir.Crashes,
			ir.UnavailableSeconds, ir.Batches,
			ir.MeanBatchSize, ir.Utilization, ir.PIMShare, ir.TokensOut,
			ir.EnergyJ, ir.UpSeconds, ir.DownSeconds)
	}
	return t
}

// classTable lists the per-SLO-class breakdown.
func classTable(r *localut.ClusterReport) *trace.Table {
	t := trace.NewTable("Per-class breakdown",
		"class", "rate/s", "offered", "admitted", "rejected", "completed",
		"good", "shed", "retries", "miss rate",
		"p99 (s)", "ttft p99 (s)", "tpot p99 (s)", "slo met")
	for _, cr := range r.Classes {
		t.Add(cr.Name, cr.RatePerSec, cr.Offered, cr.Admitted, cr.Rejected,
			cr.Completed, cr.Good, cr.Shed, cr.Retries, cr.DeadlineMissRate,
			cr.Latency.P99, cr.TTFT.P99, cr.TPOT.P99, cr.SLOMet)
	}
	return t
}

// timelineTable lists the unified fleet timeline: autoscaler actions,
// fault injections/repairs and KV-pressure sheds through one rendering
// path, in event order.
func timelineTable(r *localut.ClusterReport) *trace.Table {
	t := trace.NewTable("Fleet timeline",
		"t (s)", "kind", "action", "instance", "replica", "domain", "active",
		"p99 (s)", "samples", "recover (s)")
	for _, ev := range r.Timeline {
		t.Add(ev.Seconds, ev.Kind, ev.Action, ev.Instance, ev.Replica, ev.Domain,
			ev.Active, ev.P99, ev.Samples, ev.RecoverSeconds)
	}
	return t
}

// buildObs opens the requested trace/metrics outputs and returns the
// observability config plus a closer for the opened files.
func buildObs(tracePath string, sampleN int, metricsPath string, intervalSeconds float64) (localut.ObsConfig, func() error, error) {
	var cfg localut.ObsConfig
	var files []*os.File
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			return cfg, nil, err
		}
		files = append(files, f)
		cfg.TraceWriter = f
		cfg.TraceSampleN = sampleN
	}
	if metricsPath != "" {
		f, err := os.Create(metricsPath)
		if err != nil {
			return cfg, nil, err
		}
		files = append(files, f)
		cfg.MetricsWriter = f
		cfg.MetricsIntervalSeconds = intervalSeconds
		cfg.MetricsJSON = strings.HasSuffix(metricsPath, ".json")
	}
	closer := func() error {
		for _, f := range files {
			if err := f.Close(); err != nil {
				return err
			}
		}
		return nil
	}
	return cfg, closer, nil
}

// parseClasses parses "name:rate[:admitRate]" pairs.
func parseClasses(s string) ([]localut.ClusterClass, error) {
	if s == "" {
		return nil, nil
	}
	var out []localut.ClusterClass
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) < 2 || len(fields) > 3 {
			return nil, fmt.Errorf("bad -classes entry %q (want name:rate[:admitRate])", part)
		}
		c := localut.ClusterClass{Name: fields[0]}
		r, err := strconv.ParseFloat(fields[1], 64)
		if err != nil || r <= 0 {
			return nil, fmt.Errorf("bad rate in -classes entry %q", part)
		}
		c.RatePerSec = r
		if len(fields) == 3 {
			a, err := strconv.ParseFloat(fields[2], 64)
			if err != nil || a <= 0 {
				return nil, fmt.Errorf("bad admit rate in -classes entry %q", part)
			}
			c.AdmitRatePerSec = a
		}
		out = append(out, c)
	}
	return out, nil
}

// runSweep drives the experiments fleet-scaling driver.
func runSweep(w io.Writer, rates, fleets, model, fmtName, design string,
	instances, replicas, ranks int, routerName, admissionName string,
	duration time.Duration, seed int64, maxBatch int, sched string,
	quantum, minTok, maxTok int, meanTok float64, outTok int,
	outTokMean float64, outTokMax int, csvOut bool) error {

	rateVals, err := parseNums(rates)
	if err != nil {
		return err
	}
	fleetVals := []int{instances}
	if fleets != "" {
		fs, err := parseNums(fleets)
		if err != nil {
			return err
		}
		fleetVals = fleetVals[:0]
		for _, f := range fs {
			fleetVals = append(fleetVals, int(f))
		}
	}
	mc, err := modelConfig(model)
	if err != nil {
		return err
	}
	f, err := quant.ParseFormat(fmtName)
	if err != nil {
		return err
	}
	v, err := variantByName(design)
	if err != nil {
		return err
	}
	pol, err := serve.ParsePolicy(strings.ToLower(sched))
	if err != nil {
		return err
	}
	rt, err := cluster.ParseRouterPolicy(strings.ToLower(routerName))
	if err != nil {
		return err
	}
	adm, err := cluster.ParseAdmissionPolicy(strings.ToLower(admissionName))
	if err != nil {
		return err
	}

	base := cluster.Config{
		Base: serve.Config{
			Model: mc, Fmt: f, Variant: v,
			Replicas:      replicas,
			MaxBatch:      maxBatch,
			Scheduler:     pol,
			MinTokens:     minTok,
			MaxTokens:     maxTok,
			MeanTokens:    meanTok,
			TokenQuantum:  quantum,
			OutTokens:     outTok,
			OutTokensMean: outTokMean,
			OutTokensMax:  outTokMax,
		},
		Router:          rt,
		Admission:       adm,
		DurationSeconds: duration.Seconds(),
		Seed:            seed,
	}
	if ranks > 0 {
		eng := gemm.NewEngine()
		eng.Cfg.Ranks = ranks
		base.Base.Engine = eng
	}

	start := time.Now()
	points, err := experiments.ClusterCurve(base, fleetVals, rateVals)
	if err != nil {
		return err
	}
	table := experiments.ClusterTable(
		fmt.Sprintf("Fleet scaling: %s %s on %s, %s router, %s window",
			mc.Name, f.Name(), v, rt, duration), points)
	if csvOut {
		if err := table.CSV(w); err != nil {
			return err
		}
	} else if err := table.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%d sweep points in %.2fs host wall-clock\n",
		len(points), time.Since(start).Seconds())
	return nil
}

// runMTTFSweep drives the experiments reliability driver: goodput and
// recovery tax per (design, MTTF), with MTTF 0 as the fault-free
// baseline each design is normalized against.
func runMTTFSweep(w io.Writer, mttfs, model, fmtName, design, designsList string,
	instances, replicas, ranks int, routerName, admissionName string,
	rate float64, duration time.Duration, seed int64, maxBatch int, sched string,
	quantum, minTok, maxTok int, meanTok float64, outTok int,
	outTokMean float64, outTokMax int,
	mttr, degraded, rematGBps, deadline float64, retries int, retryBackoff float64,
	maxQueue int, kvName string, csvOut bool) error {

	var mttfVals []float64
	for _, p := range strings.Split(mttfs, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return fmt.Errorf("bad -mttf-sweep value %q (want non-negative seconds, 0 = fault-free)", p)
		}
		mttfVals = append(mttfVals, v)
	}
	designNames := []string{design}
	if designsList != "" {
		designNames = strings.Split(designsList, ",")
	}
	var designs []kernels.Variant
	for _, name := range designNames {
		v, err := variantByName(strings.TrimSpace(name))
		if err != nil {
			return err
		}
		designs = append(designs, v)
	}
	mc, err := modelConfig(model)
	if err != nil {
		return err
	}
	f, err := quant.ParseFormat(fmtName)
	if err != nil {
		return err
	}
	pol, err := serve.ParsePolicy(strings.ToLower(sched))
	if err != nil {
		return err
	}
	rt, err := cluster.ParseRouterPolicy(strings.ToLower(routerName))
	if err != nil {
		return err
	}
	adm, err := cluster.ParseAdmissionPolicy(strings.ToLower(admissionName))
	if err != nil {
		return err
	}
	kv, err := serve.ParseKVPolicy(strings.ToLower(kvName))
	if err != nil {
		return err
	}

	base := cluster.Config{
		Base: serve.Config{
			Model: mc, Fmt: f,
			Replicas:      replicas,
			MaxBatch:      maxBatch,
			Scheduler:     pol,
			MinTokens:     minTok,
			MaxTokens:     maxTok,
			MeanTokens:    meanTok,
			TokenQuantum:  quantum,
			OutTokens:     outTok,
			OutTokensMean: outTokMean,
			OutTokensMax:  outTokMax,
			MaxQueue:      maxQueue,
			KVPolicy:      kv,
		},
		Instances:       instances,
		Router:          rt,
		Admission:       adm,
		RatePerSec:      rate,
		DurationSeconds: duration.Seconds(),
		Seed:            seed,
		DeadlineSeconds: deadline,
		Faults: cluster.FaultConfig{
			MTTRSeconds:      mttr,
			DegradedFraction: degraded,
			LUTRematGBps:     rematGBps,
		},
		Retry: cluster.RetryConfig{
			MaxAttempts:    retries,
			BackoffSeconds: retryBackoff,
		},
	}
	if ranks > 0 {
		eng := gemm.NewEngine()
		eng.Cfg.Ranks = ranks
		base.Base.Engine = eng
	}

	start := time.Now()
	points, err := experiments.ReliabilityCurve(base, designs, mttfVals)
	if err != nil {
		return err
	}
	table := experiments.ReliabilityTable(
		fmt.Sprintf("Reliability: %s %s, %d instances at %g req/s, %s window",
			mc.Name, f.Name(), instances, rate, duration), points)
	if csvOut {
		if err := table.CSV(w); err != nil {
			return err
		}
	} else if err := table.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%d reliability points in %.2fs host wall-clock\n",
		len(points), time.Since(start).Seconds())
	return nil
}

// chaosScenario is one named failure mix for the -chaos seed sweep.
type chaosScenario struct {
	name   string
	mutate func(*localut.ClusterConfig)
}

// chaosBase is the fixed fleet behind the -chaos sweep: a decode fleet
// small enough that N seeds x 3 scenarios stay cheap, busy enough that
// every failure mechanism fires.
func chaosBase(seed int64) localut.ClusterConfig {
	return localut.ClusterConfig{
		Model: localut.OPT125M, Format: localut.W1A3, Design: localut.DesignLoCaLUT,
		Instances:       8,
		Replicas:        2,
		OutTokens:       4,
		RatePerSec:      30,
		DurationSeconds: 30,
		Seed:            seed,
		Audit:           true,
		Deadlines:       localut.ClusterDeadlines{DefaultSeconds: 8},
	}
}

// chaosScenarios are the three failure mixes every seed runs through:
// everything at once, correlated domain outages alone, and gray-failure
// stragglers with hedging but no crashes.
func chaosScenarios() []chaosScenario {
	faults := localut.ClusterFaults{Enabled: true, MTTFSeconds: 120, MTTRSeconds: 2}
	doms := localut.ClusterDomains{Enabled: true, Count: 4, MTBFSeconds: 60, MTTRSeconds: 2}
	strag := localut.ClusterStragglers{Enabled: true, MTBFSeconds: 60, MeanDurationSeconds: 5, Slowdown: 4}
	hedge := localut.ClusterHedge{Enabled: true, DelaySeconds: 0.5}
	return []chaosScenario{
		{"full", func(c *localut.ClusterConfig) {
			c.Faults, c.Domains, c.Stragglers, c.Hedge = faults, doms, strag, hedge
		}},
		{"domains-only", func(c *localut.ClusterConfig) { c.Domains = doms }},
		{"gray-hedged", func(c *localut.ClusterConfig) { c.Stragglers, c.Hedge = strag, hedge }},
	}
}

// chaosRow is one (scenario, seed) outcome of the sweep, also the JSON
// record shape.
type chaosRow struct {
	Scenario           string  `json:"scenario"`
	Seed               int64   `json:"seed"`
	Admitted           int     `json:"admitted"`
	Completed          int     `json:"completed"`
	Good               int     `json:"good"`
	Shed               int     `json:"shed"`
	Crashes            int     `json:"crashes"`
	DomainOutages      int     `json:"domain_outages"`
	StragglerWindows   int     `json:"straggler_windows"`
	HedgesIssued       int     `json:"hedges_issued"`
	HedgeWins          int     `json:"hedge_wins"`
	HedgeWastedSeconds float64 `json:"hedge_waste_s"`
	UnavailableSeconds float64 `json:"unavailable_s"`
}

// runChaos is the chaos seed sweep: n seeds x 3 failure scenarios, every
// run with the conservation auditor on. Any auditor violation surfaces
// as a run error and a nonzero exit; a clean sweep prints one row per
// run, byte-identical for a given n at any -j.
func runChaos(w io.Writer, n, par int, jsonOut, csvOut bool) error {
	scenarios := chaosScenarios()
	rows := make([]chaosRow, 0, n*len(scenarios))
	start := time.Now()
	for _, sc := range scenarios {
		for seed := int64(1); seed <= int64(n); seed++ {
			cfg := chaosBase(seed)
			sc.mutate(&cfg)
			sys := localut.NewSystem(localut.WithSeed(seed), localut.WithParallelism(par))
			rep, err := sys.ServeCluster(cfg)
			if err != nil {
				return fmt.Errorf("scenario %s seed %d: %w", sc.name, seed, err)
			}
			rows = append(rows, chaosRow{
				Scenario:           sc.name,
				Seed:               seed,
				Admitted:           rep.Admitted,
				Completed:          rep.Completed,
				Good:               rep.Good,
				Shed:               rep.Shed,
				Crashes:            rep.Crashes,
				DomainOutages:      rep.DomainOutages,
				StragglerWindows:   rep.StragglerWindows,
				HedgesIssued:       rep.HedgesIssued,
				HedgeWins:          rep.HedgeWins,
				HedgeWastedSeconds: rep.HedgeWastedSeconds,
				UnavailableSeconds: rep.UnavailableSeconds,
			})
		}
	}
	if jsonOut {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rows); err != nil {
			return err
		}
	} else {
		t := trace.NewTable(fmt.Sprintf("Chaos sweep: %d seeds x %d scenarios, auditor on", n, len(scenarios)),
			"scenario", "seed", "admitted", "completed", "good", "shed", "crashes",
			"domain outages", "straggler windows", "hedges", "wins", "waste (s)", "unavail (s)")
		for _, r := range rows {
			t.Add(r.Scenario, r.Seed, r.Admitted, r.Completed, r.Good, r.Shed, r.Crashes,
				r.DomainOutages, r.StragglerWindows, r.HedgesIssued, r.HedgeWins,
				r.HedgeWastedSeconds, r.UnavailableSeconds)
		}
		if csvOut {
			if err := t.CSV(w); err != nil {
				return err
			}
		} else if err := t.Render(w); err != nil {
			return err
		}
	}
	fmt.Fprintf(os.Stderr, "%d chaos runs audited clean in %.2fs host wall-clock\n",
		len(rows), time.Since(start).Seconds())
	return nil
}

// runHedgeSweep drives the experiments hedging driver: TTFT tail and
// hedge waste per trigger delay under straggler injection, with delay 0
// as the no-hedge baseline. Straggler flags default to the canonical
// gray-failure scenario (MTBF 80s, 5s windows, 4x slowdown) when unset.
func runHedgeSweep(w io.Writer, delays, model, fmtName, design string,
	instances, replicas, ranks int, routerName, admissionName string,
	rate float64, duration time.Duration, seed int64, maxBatch int, sched string,
	quantum, minTok, maxTok int, meanTok float64, outTok int,
	outTokMean float64, outTokMax int, deadline float64,
	stragMTBF, stragDur, stragSlow float64, audit, csvOut bool) error {

	var delayVals []float64
	for _, p := range strings.Split(delays, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v < 0 {
			return fmt.Errorf("bad -hedge-sweep value %q (want non-negative seconds, 0 = no hedging)", p)
		}
		delayVals = append(delayVals, v)
	}
	if stragMTBF == 0 {
		stragMTBF = 80
	}
	if stragDur == 0 {
		stragDur = 5
	}
	if stragSlow == 0 {
		stragSlow = 4
	}
	mc, err := modelConfig(model)
	if err != nil {
		return err
	}
	f, err := quant.ParseFormat(fmtName)
	if err != nil {
		return err
	}
	v, err := variantByName(design)
	if err != nil {
		return err
	}
	pol, err := serve.ParsePolicy(strings.ToLower(sched))
	if err != nil {
		return err
	}
	rt, err := cluster.ParseRouterPolicy(strings.ToLower(routerName))
	if err != nil {
		return err
	}
	adm, err := cluster.ParseAdmissionPolicy(strings.ToLower(admissionName))
	if err != nil {
		return err
	}

	base := cluster.Config{
		Base: serve.Config{
			Model: mc, Fmt: f, Variant: v,
			Replicas:      replicas,
			MaxBatch:      maxBatch,
			Scheduler:     pol,
			MinTokens:     minTok,
			MaxTokens:     maxTok,
			MeanTokens:    meanTok,
			TokenQuantum:  quantum,
			OutTokens:     outTok,
			OutTokensMean: outTokMean,
			OutTokensMax:  outTokMax,
		},
		Instances:       instances,
		Router:          rt,
		Admission:       adm,
		RatePerSec:      rate,
		DurationSeconds: duration.Seconds(),
		Seed:            seed,
		DeadlineSeconds: deadline,
		Audit:           audit,
		Stragglers: cluster.StragglerConfig{
			Enabled:             true,
			MTBFSeconds:         stragMTBF,
			MeanDurationSeconds: stragDur,
			Slowdown:            stragSlow,
		},
	}
	if ranks > 0 {
		eng := gemm.NewEngine()
		eng.Cfg.Ranks = ranks
		base.Base.Engine = eng
	}

	start := time.Now()
	points, err := experiments.HedgeCurve(base, delayVals)
	if err != nil {
		return err
	}
	table := experiments.HedgeTable(
		fmt.Sprintf("Hedging: %s %s, %d instances at %g req/s, stragglers %gx every %gs",
			mc.Name, f.Name(), instances, rate, stragSlow, stragMTBF), points)
	if csvOut {
		if err := table.CSV(w); err != nil {
			return err
		}
	} else if err := table.Render(w); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "%d hedging points in %.2fs host wall-clock\n",
		len(points), time.Since(start).Seconds())
	return nil
}

// benchScenario is one timed cluster self-benchmark workload.
type benchScenario struct {
	Model            string  `json:"model"`
	Instances        int     `json:"instances"`
	RatePerSec       float64 `json:"rate_per_sec"`
	DurationSeconds  float64 `json:"duration_s"`
	Requests         int     `json:"requests"`
	PeakInstances    int     `json:"peak_instances"`
	DistinctSims     int     `json:"distinct_forward_sims"`
	WallSeconds      float64 `json:"wall_seconds"`
	RequestsPerSec   float64 `json:"requests_per_sec"`
	SimSecondsPerSec float64 `json:"simulated_seconds_per_wall_second"`
}

// benchReport pairs the million-request static-fleet acceptance workload
// with an autoscaled one, so scaling-path performance is tracked too.
type benchReport struct {
	Fleet      benchScenario `json:"fleet"`
	Autoscaled benchScenario `json:"autoscaled"`
}

// benchRun times one scenario.
func benchRun(cfg localut.ClusterConfig) (benchScenario, error) {
	sys := localut.NewSystem(localut.WithSeed(1))
	start := time.Now()
	rep, err := sys.ServeCluster(cfg)
	if err != nil {
		return benchScenario{}, err
	}
	wall := time.Since(start).Seconds()
	out := benchScenario{
		Model:           rep.Model,
		Instances:       cfg.Instances,
		RatePerSec:      cfg.RatePerSec,
		DurationSeconds: cfg.DurationSeconds,
		Requests:        rep.Admitted,
		PeakInstances:   rep.InstancesPeak,
		DistinctSims:    rep.DistinctForwardSims,
		WallSeconds:     wall,
	}
	if wall > 0 {
		out.RequestsPerSec = float64(rep.Admitted) / wall
		out.SimSecondsPerSec = rep.MakespanSeconds / wall
	}
	return out, nil
}

// runBenchJSON times the acceptance workloads: one million requests over
// an eight-instance fleet, and an autoscaled decode fleet exercising the
// scale-up/drain paths.
func runBenchJSON(path string) error {
	fleet, err := benchRun(localut.ClusterConfig{
		Model: localut.BERTBase, Format: localut.W1A3, Design: localut.DesignLoCaLUT,
		Instances:       8,
		RatePerSec:      17000,
		DurationSeconds: 60,
		Router:          localut.RouteLeastOutstanding,
	})
	if err != nil {
		return err
	}
	scaled, err := benchRun(localut.ClusterConfig{
		Model: localut.OPT125M, Format: localut.W1A3, Design: localut.DesignLoCaLUT,
		Instances:       1,
		RatePerSec:      50,
		DurationSeconds: 60,
		OutTokens:       4,
		Autoscaler: localut.ClusterAutoscaler{
			Enabled: true, MaxInstances: 4, IntervalSeconds: 1,
			SLOSeconds: 1, ScaleDownFactor: 0.1,
		},
	})
	if err != nil {
		return err
	}
	out := benchReport{Fleet: fleet, Autoscaled: scaled}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (fleet: %d requests in %.2fs, %.0f req/s; autoscaled peak %d)\n",
		path, fleet.Requests, fleet.WallSeconds, fleet.RequestsPerSec, scaled.PeakInstances)
	return nil
}

// faultBenchScenario extends the timed scenario with reliability outcome
// counters, so regressions in the fault path's cost or behavior show up.
type faultBenchScenario struct {
	benchScenario
	GoodputPerSec      float64 `json:"goodput_per_s"`
	Crashes            int     `json:"crashes"`
	Retries            int     `json:"retries"`
	ReprefillTokens    int64   `json:"reprefill_tokens"`
	Shed               int     `json:"shed"`
	UnavailableSeconds float64 `json:"unavailable_s"`
}

// runBenchFaultsJSON times the faulted-fleet acceptance workload: an
// eight-instance fleet with deadlines, retries and fault injection dialed
// to several crashes per run.
func runBenchFaultsJSON(path string) error {
	sys := localut.NewSystem(localut.WithSeed(1))
	cfg := localut.ClusterConfig{
		Model: localut.BERTBase, Format: localut.W1A3, Design: localut.DesignLoCaLUT,
		Instances:       8,
		RatePerSec:      2000,
		DurationSeconds: 60,
		Router:          localut.RouteLeastOutstanding,
		Deadlines:       localut.ClusterDeadlines{DefaultSeconds: 5},
		Faults:          localut.ClusterFaults{Enabled: true, MTTFSeconds: 120, MTTRSeconds: 2},
	}
	start := time.Now()
	rep, err := sys.ServeCluster(cfg)
	if err != nil {
		return err
	}
	wall := time.Since(start).Seconds()
	out := faultBenchScenario{
		benchScenario: benchScenario{
			Model:           rep.Model,
			Instances:       cfg.Instances,
			RatePerSec:      cfg.RatePerSec,
			DurationSeconds: cfg.DurationSeconds,
			Requests:        rep.Admitted,
			PeakInstances:   rep.InstancesPeak,
			DistinctSims:    rep.DistinctForwardSims,
			WallSeconds:     wall,
		},
		GoodputPerSec:      rep.GoodputPerSec,
		Crashes:            rep.Crashes,
		Retries:            rep.Retries,
		ReprefillTokens:    rep.ReprefillTokens,
		Shed:               rep.Shed,
		UnavailableSeconds: rep.UnavailableSeconds,
	}
	if wall > 0 {
		out.RequestsPerSec = float64(rep.Admitted) / wall
		out.SimSecondsPerSec = rep.MakespanSeconds / wall
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d requests, %d crashes, %d retries in %.2fs)\n",
		path, rep.Admitted, rep.Crashes, rep.Retries, wall)
	return nil
}

// chaosBenchScenario extends the timed scenario with the chaos outcome
// counters, so regressions in the domain/straggler/hedge paths' cost or
// behavior show up.
type chaosBenchScenario struct {
	benchScenario
	GoodputPerSec           float64 `json:"goodput_per_s"`
	Crashes                 int     `json:"crashes"`
	DomainOutages           int     `json:"domain_outages"`
	DomainOverlapExtensions int     `json:"domain_overlap_extensions"`
	StragglerWindows        int     `json:"straggler_windows"`
	HedgesIssued            int     `json:"hedges_issued"`
	HedgeWins               int     `json:"hedge_wins"`
	HedgeWastedSeconds      float64 `json:"hedge_waste_s"`
	UnavailableSeconds      float64 `json:"unavailable_s"`
}

// runBenchChaosJSON times the chaos-fleet acceptance workload: an
// eight-instance decode fleet with independent faults, correlated domain
// outages, gray-failure stragglers and hedging all on, audited.
func runBenchChaosJSON(path string) error {
	sys := localut.NewSystem(localut.WithSeed(1))
	cfg := chaosBase(1)
	cfg.RatePerSec = 200
	cfg.DurationSeconds = 60
	chaosScenarios()[0].mutate(&cfg)
	start := time.Now()
	rep, err := sys.ServeCluster(cfg)
	if err != nil {
		return err
	}
	wall := time.Since(start).Seconds()
	out := chaosBenchScenario{
		benchScenario: benchScenario{
			Model:           rep.Model,
			Instances:       cfg.Instances,
			RatePerSec:      cfg.RatePerSec,
			DurationSeconds: cfg.DurationSeconds,
			Requests:        rep.Admitted,
			PeakInstances:   rep.InstancesPeak,
			DistinctSims:    rep.DistinctForwardSims,
			WallSeconds:     wall,
		},
		GoodputPerSec:           rep.GoodputPerSec,
		Crashes:                 rep.Crashes,
		DomainOutages:           rep.DomainOutages,
		DomainOverlapExtensions: rep.DomainOverlapExtensions,
		StragglerWindows:        rep.StragglerWindows,
		HedgesIssued:            rep.HedgesIssued,
		HedgeWins:               rep.HedgeWins,
		HedgeWastedSeconds:      rep.HedgeWastedSeconds,
		UnavailableSeconds:      rep.UnavailableSeconds,
	}
	if wall > 0 {
		out.RequestsPerSec = float64(rep.Admitted) / wall
		out.SimSecondsPerSec = rep.MakespanSeconds / wall
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d requests, %d domain outages, %d straggler windows, %d hedges in %.2fs)\n",
		path, rep.Admitted, rep.DomainOutages, rep.StragglerWindows, rep.HedgesIssued, wall)
	return nil
}

// obsBenchReport times the same faulted fleet with recording off and
// fully on (trace + metrics to discarded writers). DisabledWallSeconds
// is the hot path with nil-recorder no-ops — tracked across revisions,
// it catches recording costs leaking into the disabled path.
// PerRequestOverheadUS is full recording's marginal cost per admitted
// request, the gated number: the simulated fleet is so fast that a
// wall-clock ratio would amplify nanosecond noise.
type obsBenchReport struct {
	Requests             int     `json:"requests"`
	DisabledWallSeconds  float64 `json:"disabled_wall_s"`
	EnabledWallSeconds   float64 `json:"enabled_wall_s"`
	OverheadFraction     float64 `json:"overhead_fraction"`
	PerRequestOverheadUS float64 `json:"per_request_overhead_us"`
}

// runBenchObsJSON times the observability layer: one faulted
// eight-instance fleet run with a zero ObsConfig, one with trace and
// one-second metrics enabled, byte sinks for both outputs. A positive
// maxOverheadUS turns the per-request recording cost into a hard gate.
func runBenchObsJSON(path string, maxOverheadUS float64) error {
	cfg := localut.ClusterConfig{
		Model: localut.BERTBase, Format: localut.W1A3, Design: localut.DesignLoCaLUT,
		Instances:       8,
		RatePerSec:      2000,
		DurationSeconds: 60,
		Router:          localut.RouteLeastOutstanding,
		Deadlines:       localut.ClusterDeadlines{DefaultSeconds: 5},
		Faults:          localut.ClusterFaults{Enabled: true, MTTFSeconds: 120, MTTRSeconds: 2},
	}
	run := func(obs localut.ObsConfig) (float64, *localut.ClusterReport, error) {
		c := cfg
		c.Obs = obs
		sys := localut.NewSystem(localut.WithSeed(1))
		start := time.Now()
		rep, err := sys.ServeCluster(c)
		if err != nil {
			return 0, nil, err
		}
		return time.Since(start).Seconds(), rep, nil
	}
	// Warm-up run so neither timed run pays one-time costs (code paging,
	// allocator growth) the other doesn't.
	if _, _, err := run(localut.ObsConfig{}); err != nil {
		return err
	}
	disabledWall, rep, err := run(localut.ObsConfig{})
	if err != nil {
		return err
	}
	enabledWall, _, err := run(localut.ObsConfig{
		TraceWriter:            io.Discard,
		MetricsWriter:          io.Discard,
		MetricsIntervalSeconds: 1,
	})
	if err != nil {
		return err
	}
	out := obsBenchReport{
		Requests:            rep.Admitted,
		DisabledWallSeconds: disabledWall,
		EnabledWallSeconds:  enabledWall,
	}
	if disabledWall > 0 {
		out.OverheadFraction = (enabledWall - disabledWall) / disabledWall
	}
	if rep.Admitted > 0 {
		out.PerRequestOverheadUS = (enabledWall - disabledWall) / float64(rep.Admitted) * 1e6
	}
	data, err := json.MarshalIndent(out, "", "  ")
	if err != nil {
		return err
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "wrote %s (%d requests; disabled %.2fs, enabled %.2fs, %.1fus/request recording cost)\n",
		path, out.Requests, disabledWall, enabledWall, out.PerRequestOverheadUS)
	if maxOverheadUS > 0 && out.PerRequestOverheadUS > maxOverheadUS {
		return fmt.Errorf("recording overhead regression: %.1fus per request exceeds the %.1fus gate",
			out.PerRequestOverheadUS, maxOverheadUS)
	}
	return nil
}

// parseNums parses "2,4,8".
func parseNums(s string) ([]float64, error) {
	parts := strings.Split(s, ",")
	out := make([]float64, 0, len(parts))
	for _, p := range parts {
		v, err := strconv.ParseFloat(strings.TrimSpace(p), 64)
		if err != nil || v <= 0 {
			return nil, fmt.Errorf("bad sweep value %q (want positive numbers)", p)
		}
		out = append(out, v)
	}
	return out, nil
}

// modelConfig maps CLI names to dnn configs for the internal sweep path.
func modelConfig(name string) (dnn.ModelConfig, error) {
	switch strings.ToLower(name) {
	case "bert-base":
		return dnn.BERTBase(), nil
	case "opt-125m":
		return dnn.OPT125M(), nil
	case "vit-base":
		return dnn.ViTBase(), nil
	}
	return dnn.ModelConfig{}, fmt.Errorf("unknown model %q (want bert-base, opt-125m or vit-base)", name)
}

// variantByName resolves a design by its paper name, case-insensitively.
func variantByName(s string) (kernels.Variant, error) {
	for _, v := range kernels.Variants {
		if strings.EqualFold(s, v.String()) {
			return v, nil
		}
	}
	return 0, fmt.Errorf("unknown design %q", s)
}

// profStop flushes any active pprof collectors before an error exit, so a
// failing profiled run still leaves usable profiles. Idempotent; the
// success path defers the same stop.
var profStop = func() {}

func fatal(err error) {
	profStop()
	fmt.Fprintln(os.Stderr, "localut-cluster:", err)
	os.Exit(1)
}
