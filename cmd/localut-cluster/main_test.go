package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/ais-snu/localut"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenConfig is the fixed workload behind the -json regression test: a
// small faulted fleet with deadlines and retries, touching the report's
// reliability rows, the fault timeline and the per-instance/per-class
// sections.
func goldenConfig() localut.ClusterConfig {
	return localut.ClusterConfig{
		Model: localut.BERTBase, Format: localut.W1A3, Design: localut.DesignLoCaLUT,
		Instances:       4,
		Replicas:        2,
		RatePerSec:      20,
		DurationSeconds: 20,
		Deadlines:       localut.ClusterDeadlines{DefaultSeconds: 5},
		Faults: localut.ClusterFaults{
			Enabled:     true,
			MTTFSeconds: 15,
			MTTRSeconds: 1,
		},
	}
}

// renderJSON produces exactly what `localut-cluster -json` writes: the
// report through an indenting encoder.
func renderJSON(t *testing.T, cfg localut.ClusterConfig) []byte {
	t.Helper()
	sys := localut.NewSystem(localut.WithSeed(1))
	rep, err := sys.ServeCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestClusterJSONGolden pins the -json output byte for byte on a fixed
// seed and a faulted-fleet config. A diff means the report schema, the
// simulation's numbers or the fault schedule changed — all must be
// deliberate; run `go test ./cmd/localut-cluster -update` to re-bless.
func TestClusterJSONGolden(t *testing.T) {
	got := renderJSON(t, goldenConfig())
	path := filepath.Join("testdata", "cluster_bert_w1a3_faults.golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSON report drifted from %s (re-bless with -update if intentional)\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// TestClusterJSONGoldenStable guards the golden test itself: two fresh
// systems must render identical bytes, or the golden file would flake.
func TestClusterJSONGoldenStable(t *testing.T) {
	a := renderJSON(t, goldenConfig())
	b := renderJSON(t, goldenConfig())
	if !bytes.Equal(a, b) {
		t.Fatal("same config rendered different JSON across runs")
	}
}

// TestClusterGoldenHasFaults guards the scenario: the golden workload
// must actually exercise the fault layer, or the regression test pins
// nothing interesting.
func TestClusterGoldenHasFaults(t *testing.T) {
	sys := localut.NewSystem(localut.WithSeed(1))
	rep, err := sys.ServeCluster(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes == 0 {
		t.Error("golden scenario produced no crashes")
	}
	if len(rep.Faults) == 0 {
		t.Error("golden scenario produced no fault timeline")
	}
	if rep.Admitted != rep.Completed+rep.Shed {
		t.Errorf("accounting leak: admitted %d != completed %d + shed %d",
			rep.Admitted, rep.Completed, rep.Shed)
	}
}

// TestSummaryTableReliabilityRows sanity-checks the table renderer: a
// faulted run must surface the reliability rows.
func TestSummaryTableReliabilityRows(t *testing.T) {
	sys := localut.NewSystem(localut.WithSeed(1))
	rep, err := sys.ServeCluster(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := summaryTable(rep).Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, row := range []string{"goodput (req/s)", "good / late / shed", "retries",
		"reprefill tokens", "crashes / degraded", "unavailable (s)", "time-to-recover"} {
		if !bytes.Contains([]byte(out), []byte(row)) {
			t.Errorf("summary table missing row %q:\n%s", row, out)
		}
	}
	buf.Reset()
	if err := faultTable(rep).Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cell := range []string{"crash", "repair"} {
		if !bytes.Contains(buf.Bytes(), []byte(cell)) {
			t.Errorf("fault timeline missing %q:\n%s", cell, buf.String())
		}
	}
}

// TestParseClasses covers the class-flag parser.
func TestParseClasses(t *testing.T) {
	got, err := parseClasses("interactive:300:200, batch:100")
	if err != nil || len(got) != 2 || got[0].AdmitRatePerSec != 200 || got[1].RatePerSec != 100 {
		t.Errorf("parseClasses = %+v, %v", got, err)
	}
	for _, bad := range []string{"x", "a:b", "a:-1", "a:1:0", "a:1:2:3"} {
		if _, err := parseClasses(bad); err == nil {
			t.Errorf("parseClasses(%q) accepted", bad)
		}
	}
}
