package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"github.com/ais-snu/localut"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// goldenConfig is the fixed workload behind the -json regression test: a
// small faulted fleet with deadlines and retries, touching the report's
// reliability rows, the fault timeline and the per-instance/per-class
// sections.
func goldenConfig() localut.ClusterConfig {
	return localut.ClusterConfig{
		Model: localut.BERTBase, Format: localut.W1A3, Design: localut.DesignLoCaLUT,
		Instances:       4,
		Replicas:        2,
		RatePerSec:      20,
		DurationSeconds: 20,
		Deadlines:       localut.ClusterDeadlines{DefaultSeconds: 5},
		Faults: localut.ClusterFaults{
			Enabled:     true,
			MTTFSeconds: 15,
			MTTRSeconds: 1,
		},
	}
}

// renderJSON produces exactly what `localut-cluster -json` writes: the
// report through an indenting encoder.
func renderJSON(t *testing.T, cfg localut.ClusterConfig) []byte {
	t.Helper()
	sys := localut.NewSystem(localut.WithSeed(1))
	rep, err := sys.ServeCluster(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestClusterJSONGolden pins the -json output byte for byte on a fixed
// seed and a faulted-fleet config. A diff means the report schema, the
// simulation's numbers or the fault schedule changed — all must be
// deliberate; run `go test ./cmd/localut-cluster -update` to re-bless.
func TestClusterJSONGolden(t *testing.T) {
	got := renderJSON(t, goldenConfig())
	path := filepath.Join("testdata", "cluster_bert_w1a3_faults.golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("JSON report drifted from %s (re-bless with -update if intentional)\ngot:\n%s\nwant:\n%s",
			path, got, want)
	}
}

// chaosGoldenConfig is the fixed workload behind the chaos -json
// regression test: the full failure mix — independent faults, correlated
// domain outages, gray-failure stragglers and hedging — with the
// conservation auditor on, touching every chaos counter and timeline
// kind in the report schema.
func chaosGoldenConfig() localut.ClusterConfig {
	return localut.ClusterConfig{
		Model: localut.OPT125M, Format: localut.W1A3, Design: localut.DesignLoCaLUT,
		Instances:       8,
		Replicas:        2,
		OutTokens:       4,
		RatePerSec:      30,
		DurationSeconds: 30,
		Seed:            2,
		Audit:           true,
		Deadlines:       localut.ClusterDeadlines{DefaultSeconds: 8},
		Faults:          localut.ClusterFaults{Enabled: true, MTTFSeconds: 120, MTTRSeconds: 2},
		Domains:         localut.ClusterDomains{Enabled: true, Count: 4, MTBFSeconds: 60, MTTRSeconds: 2},
		Stragglers:      localut.ClusterStragglers{Enabled: true, MTBFSeconds: 60, MeanDurationSeconds: 5, Slowdown: 4},
		Hedge:           localut.ClusterHedge{Enabled: true, DelaySeconds: 0.5},
	}
}

// TestClusterChaosJSONGolden pins the -json output byte for byte on a
// chaos fleet: domain outages, straggler windows and hedge resolutions
// all land in the report and the timeline. Re-bless with -update.
func TestClusterChaosJSONGolden(t *testing.T) {
	got := renderJSON(t, chaosGoldenConfig())
	path := filepath.Join("testdata", "cluster_opt125m_w1a3_chaos.golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("chaos JSON report drifted from %s (re-bless with -update if intentional)", path)
	}
}

// TestClusterChaosGoldenHasChaos guards the chaos golden scenario: every
// failure mechanism must actually fire, or the regression test pins a
// fleet that never exercised the chaos paths.
func TestClusterChaosGoldenHasChaos(t *testing.T) {
	sys := localut.NewSystem(localut.WithSeed(1))
	rep, err := sys.ServeCluster(chaosGoldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.DomainOutages == 0 {
		t.Error("chaos golden produced no domain outages")
	}
	if rep.StragglerWindows == 0 {
		t.Error("chaos golden produced no straggler windows")
	}
	if rep.HedgesIssued == 0 {
		t.Error("chaos golden produced no hedges")
	}
	if rep.HedgesIssued != rep.HedgeCancels+rep.HedgeDrops {
		t.Errorf("hedge ledger leak: %d issued != %d cancels + %d drops",
			rep.HedgesIssued, rep.HedgeCancels, rep.HedgeDrops)
	}
	kinds := map[string]bool{}
	for _, ev := range rep.Timeline {
		kinds[ev.Kind] = true
	}
	for _, k := range []string{"fault", "domain-outage", "straggler", "hedge"} {
		if !kinds[k] {
			t.Errorf("chaos golden timeline has no %q events", k)
		}
	}
}

// TestClusterJSONGoldenStable guards the golden test itself: two fresh
// systems must render identical bytes, or the golden file would flake.
func TestClusterJSONGoldenStable(t *testing.T) {
	a := renderJSON(t, goldenConfig())
	b := renderJSON(t, goldenConfig())
	if !bytes.Equal(a, b) {
		t.Fatal("same config rendered different JSON across runs")
	}
}

// TestClusterGoldenHasFaults guards the scenario: the golden workload
// must actually exercise the fault layer, or the regression test pins
// nothing interesting.
func TestClusterGoldenHasFaults(t *testing.T) {
	sys := localut.NewSystem(localut.WithSeed(1))
	rep, err := sys.ServeCluster(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Crashes == 0 {
		t.Error("golden scenario produced no crashes")
	}
	faults := 0
	for _, ev := range rep.Timeline {
		if ev.Kind == "fault" {
			faults++
		}
	}
	if faults == 0 {
		t.Error("golden scenario produced no fault timeline")
	}
	if rep.Admitted != rep.Completed+rep.Shed {
		t.Errorf("accounting leak: admitted %d != completed %d + shed %d",
			rep.Admitted, rep.Completed, rep.Shed)
	}
}

// TestSummaryTableReliabilityRows sanity-checks the table renderer: a
// faulted run must surface the reliability rows.
func TestSummaryTableReliabilityRows(t *testing.T) {
	sys := localut.NewSystem(localut.WithSeed(1))
	rep, err := sys.ServeCluster(goldenConfig())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := summaryTable(rep).Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, row := range []string{"goodput (req/s)", "good / late / shed", "retries",
		"reprefill tokens", "crashes / degraded", "unavailable (s)", "time-to-recover"} {
		if !bytes.Contains([]byte(out), []byte(row)) {
			t.Errorf("summary table missing row %q:\n%s", row, out)
		}
	}
	buf.Reset()
	if err := timelineTable(rep).Render(&buf); err != nil {
		t.Fatal(err)
	}
	for _, cell := range []string{"fault", "crash", "repair"} {
		if !bytes.Contains(buf.Bytes(), []byte(cell)) {
			t.Errorf("fleet timeline missing %q:\n%s", cell, buf.String())
		}
	}
}

// obsRun runs one cluster workload with tracing and metrics captured
// in memory, returning the two exports.
func obsRun(t *testing.T, cfg localut.ClusterConfig, sampleN int, interval float64) (traceJSON, metricsCSV []byte) {
	t.Helper()
	var tb, mb bytes.Buffer
	cfg.Obs = localut.ObsConfig{
		TraceWriter: &tb, TraceSampleN: sampleN,
		MetricsWriter: &mb, MetricsIntervalSeconds: interval,
	}
	sys := localut.NewSystem(localut.WithSeed(1))
	if _, err := sys.ServeCluster(cfg); err != nil {
		t.Fatal(err)
	}
	return tb.Bytes(), mb.Bytes()
}

// traceFile is the Chrome trace-event JSON envelope the export writes.
type traceFile struct {
	DisplayTimeUnit string           `json:"displayTimeUnit"`
	TraceEvents     []map[string]any `json:"traceEvents"`
}

// TestTraceGolden pins the Chrome trace export byte for byte on the
// faulted golden workload, and checks it is a well-formed trace-event
// file. Re-bless with -update after deliberate changes.
func TestTraceGolden(t *testing.T) {
	got, _ := obsRun(t, goldenConfig(), 1, 1)
	path := filepath.Join("testdata", "cluster_bert_w1a3_faults.trace.golden.json")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create the golden file)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("trace export drifted from %s (re-bless with -update if intentional)", path)
	}
	var tf traceFile
	if err := json.Unmarshal(got, &tf); err != nil {
		t.Fatalf("trace export is not valid JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" || len(tf.TraceEvents) == 0 {
		t.Fatalf("malformed trace file: unit %q, %d events", tf.DisplayTimeUnit, len(tf.TraceEvents))
	}
	phases := map[string]bool{}
	for _, ev := range tf.TraceEvents {
		ph, _ := ev["ph"].(string)
		phases[ph] = true
	}
	for _, ph := range []string{"M", "X", "i", "b", "e"} {
		if !phases[ph] {
			t.Errorf("trace has no %q events (metadata/span/instant/async expected)", ph)
		}
	}
}

// TestObsDeterministic pins both exports byte for byte across fresh
// systems: observability must be a pure function of config and seed.
func TestObsDeterministic(t *testing.T) {
	tr1, m1 := obsRun(t, goldenConfig(), 1, 1)
	tr2, m2 := obsRun(t, goldenConfig(), 1, 1)
	if !bytes.Equal(tr1, tr2) {
		t.Error("trace export diverged across runs")
	}
	if !bytes.Equal(m1, m2) {
		t.Error("metrics export diverged across runs")
	}
}

// TestTraceSampling checks 1-in-N request sampling: a sampled trace
// must carry strictly fewer request-lifecycle (async begin) events, and
// fewer total bytes, than a full one.
func TestTraceSampling(t *testing.T) {
	full, _ := obsRun(t, goldenConfig(), 1, 1)
	sampled, _ := obsRun(t, goldenConfig(), 8, 1)
	count := func(b []byte) int { return bytes.Count(b, []byte(`"ph":"b"`)) }
	if nf, ns := count(full), count(sampled); ns == 0 || ns >= nf {
		t.Errorf("sampling did not thin request spans: full %d, 1-in-8 %d", nf, ns)
	}
	if len(sampled) >= len(full) {
		t.Errorf("sampled trace (%d bytes) not smaller than full (%d bytes)", len(sampled), len(full))
	}
}

// TestObsEdgeCases covers the degenerate runs the exporters must not
// choke on: an arrival window with (almost) no traffic, a run where
// everything is shed, and a metrics interval longer than the run.
func TestObsEdgeCases(t *testing.T) {
	t.Run("near-empty-window", func(t *testing.T) {
		cfg := goldenConfig()
		cfg.Faults = localut.ClusterFaults{}
		cfg.RatePerSec = 0.001
		cfg.DurationSeconds = 5
		tr, mc := obsRun(t, cfg, 1, 1)
		var tf traceFile
		if err := json.Unmarshal(tr, &tf); err != nil {
			t.Fatalf("trace invalid on near-empty window: %v", err)
		}
		if lines := bytes.Count(mc, []byte("\n")); lines < 2 {
			t.Errorf("metrics export missing header or t=0 row:\n%s", mc)
		}
	})
	t.Run("all-shed", func(t *testing.T) {
		// Deadline sheds fire for work that expires while queued, so the
		// fleet must be driven far past saturation.
		cfg := goldenConfig()
		cfg.Faults = localut.ClusterFaults{}
		cfg.RatePerSec = 2000
		cfg.DurationSeconds = 2
		cfg.Deadlines = localut.ClusterDeadlines{DefaultSeconds: 1e-6}
		var tb, mb bytes.Buffer
		cfg.Obs = localut.ObsConfig{TraceWriter: &tb, MetricsWriter: &mb}
		sys := localut.NewSystem(localut.WithSeed(1))
		rep, err := sys.ServeCluster(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Good != 0 || rep.Shed == 0 {
			t.Fatalf("deadline 1µs still produced %d good (%d shed)", rep.Good, rep.Shed)
		}
		var tf traceFile
		if err := json.Unmarshal(tb.Bytes(), &tf); err != nil {
			t.Fatalf("trace invalid on all-shed run: %v", err)
		}
	})
	t.Run("interval-longer-than-run", func(t *testing.T) {
		cfg := goldenConfig()
		cfg.Faults = localut.ClusterFaults{}
		_, mc := obsRun(t, cfg, 1, 1e6)
		// Header, the t=0 row, and the final flush at the makespan.
		if lines := bytes.Count(mc, []byte("\n")); lines != 3 {
			t.Errorf("want header + 2 rows when the interval exceeds the run, got:\n%s", mc)
		}
	})
}

// TestParseClasses covers the class-flag parser.
func TestParseClasses(t *testing.T) {
	got, err := parseClasses("interactive:300:200, batch:100")
	if err != nil || len(got) != 2 || got[0].AdmitRatePerSec != 200 || got[1].RatePerSec != 100 {
		t.Errorf("parseClasses = %+v, %v", got, err)
	}
	for _, bad := range []string{"x", "a:b", "a:-1", "a:1:0", "a:1:2:3"} {
		if _, err := parseClasses(bad); err == nil {
			t.Errorf("parseClasses(%q) accepted", bad)
		}
	}
}
