// Command localut-gemm runs a single GEMM on the simulated PIM system —
// the equivalent of the paper artifact's script.h entry point: pick a
// matrix shape, a quantization format, a design and optionally a packing
// degree, and get execution time plus a functionality check.
//
// Usage:
//
//	localut-gemm -m 3072 -k 768 -n 128 -fmt W1A3 -design LoCaLUT [-p 8] [-slicek 8]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/ais-snu/localut"
)

func main() {
	m := flag.Int("m", 768, "weight rows M")
	k := flag.Int("k", 768, "reduction dimension K")
	n := flag.Int("n", 128, "activation columns N")
	fmtName := flag.String("fmt", "W1A3", "quantization format (W1A3, W1A4, W2A2, W4A4)")
	design := flag.String("design", "all", "design: naive, ltc, op, oplc, oplcrc, localut, all")
	p := flag.Int("p", 0, "force packing degree (0 = cost model)")
	sliceK := flag.Int("slicek", 0, "force slice batch k (0 = cost model)")
	stream := flag.Bool("stream", false, "force slice streaming (with -p)")
	seed := flag.Int64("seed", 1, "workload seed")
	flag.Parse()

	f, err := localut.ParseFormat(*fmtName)
	if err != nil {
		fatal(err)
	}
	sys := localut.NewSystem(localut.WithSeed(*seed))

	plan, err := sys.ChoosePlan(f, *m, *k, *n)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("shape (%d, %d, %d) %s — cost model: p=%d streaming=%v k=%d (predicted %.3f ms/bank-pass)\n\n",
		*m, *k, *n, f.Name(), plan.P, plan.Streaming, plan.SliceK, plan.PredictedSeconds*1e3)

	designs := map[string]localut.Design{
		"naive": localut.DesignNaive, "ltc": localut.DesignLTC,
		"op": localut.DesignOP, "oplc": localut.DesignOPLC,
		"oplcrc": localut.DesignOPLCRC, "localut": localut.DesignLoCaLUT,
	}
	var run []localut.Design
	if *design == "all" {
		run = localut.Designs
	} else {
		d, ok := designs[strings.ToLower(*design)]
		if !ok {
			fatal(fmt.Errorf("unknown design %q", *design))
		}
		run = []localut.Design{d}
	}

	var opts []localut.GEMMOption
	opts = append(opts, localut.WithPaperTiling())
	if *p > 0 {
		opts = append(opts, localut.WithPackingDegree(*p))
	}
	if *sliceK > 0 {
		opts = append(opts, localut.WithSliceK(*sliceK))
	}
	if *stream {
		opts = append(opts, localut.WithStreaming())
	}

	fmt.Printf("%-10s %12s %12s %12s %10s %9s %s\n",
		"design", "total (ms)", "kernel (ms)", "xfer (ms)", "energy (J)", "p/k", "check")
	var base float64
	for _, d := range run {
		res, err := sys.GEMM(f, *m, *k, *n, d, opts...)
		if err != nil {
			fmt.Printf("%-10s error: %v\n", d, err)
			continue
		}
		if base == 0 {
			base = res.TotalSeconds
		}
		check := "FAIL"
		if res.Verified {
			check = "OK"
		}
		fmt.Printf("%-10s %12.4f %12.4f %12.4f %10.4f %6d/%-2d %s (%.2fx)\n",
			d, res.TotalSeconds*1e3, res.KernelSeconds*1e3, res.Transfer*1e3,
			res.EnergyJ, res.P, res.SliceK, check, base/res.TotalSeconds)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "localut-gemm:", err)
	os.Exit(1)
}
