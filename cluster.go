package localut

import (
	"strings"

	"github.com/ais-snu/localut/internal/cluster"
	"github.com/ais-snu/localut/internal/kernels"
	"github.com/ais-snu/localut/internal/serve"
)

// RouterPolicy selects how a cluster spreads requests over its fleet.
type RouterPolicy int

const (
	// RouteRoundRobin cycles through the routable instances.
	RouteRoundRobin RouterPolicy = iota
	// RouteLeastOutstanding picks the instance with the fewest
	// admitted-but-unfinished requests.
	RouteLeastOutstanding
	// RouteWeightedFreeKV picks the instance with the most free KV-cache
	// capacity — the capacity-axis-aware router for decode-heavy fleets.
	RouteWeightedFreeKV
	// RouteShapeAffinity hashes the padded request shape over the fleet,
	// concentrating same-shape requests for uniform batches.
	RouteShapeAffinity
)

// String names the policy ("round-robin", "least-outstanding",
// "weighted-kv", "shape-affinity").
func (p RouterPolicy) String() string { return cluster.RouterPolicy(p).String() }

// ParseRouterPolicy parses a router-policy name, case-insensitively.
func ParseRouterPolicy(s string) (RouterPolicy, error) {
	p, err := cluster.ParseRouterPolicy(strings.ToLower(s))
	return RouterPolicy(p), err
}

// AdmissionPolicy selects the cluster's admission controller.
type AdmissionPolicy int

const (
	// AdmitAll admits every arrival.
	AdmitAll AdmissionPolicy = iota
	// AdmitTokenBucket rate-limits each SLO class with its own token
	// bucket (sustained rate + burst depth).
	AdmitTokenBucket
)

// String names the policy ("admit-all", "token-bucket").
func (p AdmissionPolicy) String() string { return cluster.AdmissionPolicy(p).String() }

// ParseAdmissionPolicy parses an admission-policy name, case-insensitively.
func ParseAdmissionPolicy(s string) (AdmissionPolicy, error) {
	p, err := cluster.ParseAdmissionPolicy(strings.ToLower(s))
	return AdmissionPolicy(p), err
}

// KVPolicy selects how each appliance treats its per-replica KV-cache
// capacity: as a passive gauge (reported, never enforced), as a stall
// budget (prefill admission waits until decode retirements free KV), or
// as a shed budget (requests that don't fit are dropped with accounting).
type KVPolicy int

const (
	// KVGauge reports KV peak/capacity but never enforces the budget.
	KVGauge KVPolicy = iota
	// KVStall enforces the budget by stalling prefill admission.
	KVStall
	// KVShed enforces the budget by shedding what does not fit.
	KVShed
)

// String names the policy ("gauge", "stall", "shed").
func (p KVPolicy) String() string { return serve.KVPolicy(p).String() }

// ParseKVPolicy parses a KV-policy name, case-insensitively.
func ParseKVPolicy(s string) (KVPolicy, error) {
	p, err := serve.ParseKVPolicy(strings.ToLower(s))
	return KVPolicy(p), err
}

// ClusterFaults is the deterministic fault plan: every instance draws
// exponential fail-stop times (mean MTTFSeconds) from its own seeded
// stream. A crashed appliance leaves the router, its queued requests
// reroute, and its in-flight batches and live decode state are lost —
// retried work pays full re-prefill, and the appliance pays an
// exponential repair delay (mean MTTRSeconds) plus a modeled LUT
// re-materialization latency before returning to service. With
// probability DegradedFraction a fault instead degrades one replica
// (rank group) and the instance keeps serving at reduced capacity.
type ClusterFaults struct {
	Enabled bool
	// MTTFSeconds is the per-instance mean time to failure (required
	// when enabled).
	MTTFSeconds float64
	// MTTRSeconds is the mean repair delay (default 5).
	MTTRSeconds float64
	// DegradedFraction is the probability a fault is a single-replica
	// loss instead of a crash (default 0).
	DegradedFraction float64
	// LUTRematGBps is the assumed DRAM write bandwidth for re-materializing
	// the appliance's LUT budget on recovery (default 16).
	LUTRematGBps float64
}

// ClusterDomains is the correlated-failure plan: instances are grouped
// into Count failure domains (racks, power feeds) by ID modulo Count, and
// every active member of a domain fail-stops at the same instant when the
// domain's seeded outage stream fires, sharing one repair window. A
// member already down has its repair extended, never shortened — the
// overlapping windows merge into one outage span counted once.
type ClusterDomains struct {
	Enabled bool
	// Count is the number of failure domains (default 2).
	Count int
	// MTBFSeconds is the per-domain mean time between outages (required
	// when enabled).
	MTBFSeconds float64
	// MTTRSeconds is the mean domain repair delay (default 10); full LUT
	// re-materialization is added on top, as for instance faults.
	MTTRSeconds float64
}

// ClusterStragglers is the gray-failure plan: members draw seeded
// slowdown windows during which every pass they launch costs Slowdown
// times its healthy pricing — they keep serving and stay routable, which
// is exactly the tail hazard request hedging exists for.
type ClusterStragglers struct {
	Enabled bool
	// MTBFSeconds is the per-member mean time between slowdown windows
	// (required when enabled).
	MTBFSeconds float64
	// MeanDurationSeconds is the mean window length (default 5).
	MeanDurationSeconds float64
	// Slowdown is the cost multiplier inside a window; must exceed 1
	// (default 4).
	Slowdown float64
}

// ClusterHedge duplicates requests still waiting for their first token
// DelaySeconds after arrival onto a second member (fewest outstanding,
// excluding the current one). First token wins; the loser is cancelled
// with the unelapsed share of its pass refunded and the spent share
// reported as hedge waste. Each request hedges at most once.
type ClusterHedge struct {
	Enabled bool
	// DelaySeconds is the default hedge trigger (required when enabled);
	// classes can override it via ClusterClass.HedgeDelaySeconds.
	DelaySeconds float64
}

// ClusterRetry governs re-service of work lost to faults: capped
// exponential backoff with a bounded number of attempts.
type ClusterRetry struct {
	// MaxAttempts bounds total service attempts per request (default 3).
	MaxAttempts int
	// BackoffSeconds is the first retry delay (default 0.05); attempt k
	// waits BackoffSeconds * 2^(k-1), capped at BackoffCapSeconds.
	BackoffSeconds float64
	// BackoffCapSeconds caps the backoff (default 1).
	BackoffCapSeconds float64
}

// ClusterDeadlines gives requests completion deadlines so the report can
// separate goodput (deadline-met completions per second) from raw
// throughput. Work that cannot finish in time is shed with accounting.
type ClusterDeadlines struct {
	// DefaultSeconds applies to every class that does not set its own
	// DeadlineSeconds (0 = no deadline).
	DefaultSeconds float64
}

// ClusterClass is one SLO class of cluster traffic: an independent
// open-loop Poisson population with its own rate, length distributions,
// admission budget and latency objectives. Zero length/decode fields
// inherit the cluster-level defaults.
type ClusterClass struct {
	Name       string
	RatePerSec float64

	// AdmitRatePerSec/AdmitBurst parameterize the class's token bucket
	// under AdmitTokenBucket (defaults: the class rate, and one second of
	// it, at least 1).
	AdmitRatePerSec float64
	AdmitBurst      float64

	MinTokens, MaxTokens int
	MeanTokens           float64

	OutTokens     int
	OutTokensMean float64
	OutTokensMax  int

	// p99 SLO targets in seconds (0 = not tracked).
	TTFTp99SLO    float64
	LatencyP99SLO float64
	TPOTp99SLO    float64

	// DeadlineSeconds is this class's completion deadline (0 inherits
	// Deadlines.DefaultSeconds).
	DeadlineSeconds float64

	// HedgeDelaySeconds overrides Hedge.DelaySeconds for this class when
	// hedging is enabled (0 = inherit the fleet default).
	HedgeDelaySeconds float64
}

// ClusterAutoscaler parameterizes the reactive autoscaler: every
// IntervalSeconds it compares the window's response-start p99 against
// SLOSeconds, launching an instance (routable after WarmupSeconds) when
// above, and draining one (stop routing, finish work, retire after
// DrainSeconds) when far below or idle.
type ClusterAutoscaler struct {
	Enabled                    bool
	MinInstances, MaxInstances int
	IntervalSeconds            float64
	SLOSeconds                 float64
	ScaleDownFactor            float64
	WarmupSeconds              float64
	DrainSeconds               float64
}

// ClusterConfig describes one cluster-scale serving simulation: a fleet
// of appliances — each a full request-level serving instance — behind a
// router, admission control and an optional autoscaler.
type ClusterConfig struct {
	Model  Model
	Format Format
	Design Design
	// Designs optionally makes the fleet heterogeneous: instance i runs
	// Designs[i mod len], covering autoscaled instances too. Empty =
	// every instance runs Design.
	Designs []Design

	// Instances is the initial fleet size (default 2).
	Instances int
	// Replicas splits each appliance's ranks into independent serving
	// groups (default 4).
	Replicas int

	Router    RouterPolicy
	Admission AdmissionPolicy

	// Classes lists the traffic populations; empty Classes with a
	// positive RatePerSec is shorthand for one "default" class.
	Classes    []ClusterClass
	RatePerSec float64

	DurationSeconds float64
	// Seed overrides the system seed for this run (0 = system seed).
	Seed int64

	MaxBatch  int
	Scheduler SchedulerPolicy

	MinTokens, MaxTokens int
	MeanTokens           float64
	TokenQuantum         int

	OutTokens     int
	OutTokensMean float64
	OutTokensMax  int

	// MaxQueue bounds each appliance's admission queue (0 = unbounded);
	// arrivals that find every routable queue full are shed.
	MaxQueue int
	// KVPolicy turns the per-replica KV gauge into an enforced budget.
	KVPolicy KVPolicy

	Autoscaler ClusterAutoscaler

	Faults     ClusterFaults
	Domains    ClusterDomains
	Stragglers ClusterStragglers
	Hedge      ClusterHedge
	Deadlines  ClusterDeadlines
	Retry      ClusterRetry

	// Audit runs the conservation auditor after the drain: request,
	// busy-time, KV and outage-window ledgers must balance exactly, and
	// any violation turns the run into an error instead of a report.
	Audit bool

	// Obs attaches the observability layer: fleet trace export and
	// interval time-series metrics. The zero value records nothing.
	Obs ObsConfig
}

// ClusterInstanceReport summarizes one fleet member.
type ClusterInstanceReport struct {
	ID       int    `json:"id"`
	Design   string `json:"design"`
	Replicas int    `json:"replicas"`

	UpSeconds     float64 `json:"up_s"`
	ActiveSeconds float64 `json:"active_s"`
	DrainSeconds  float64 `json:"drain_s,omitempty"`
	DownSeconds   float64 `json:"down_s,omitempty"`

	// Domain is the member's failure domain under correlated fault
	// injection (-1 when failure domains are off).
	Domain int `json:"domain"`

	Requests  int `json:"requests"`
	Completed int `json:"completed"`
	Shed      int `json:"shed,omitempty"`
	// Canceled counts hedge losers cancelled here; Displaced counts
	// requests a fault handed back. With them the member's ledger closes:
	// requests == completed + shed + canceled + displaced after the drain.
	Canceled    int `json:"canceled,omitempty"`
	Displaced   int `json:"displaced,omitempty"`
	Batches     int `json:"batches"`
	DecodeSteps int `json:"decode_steps"`

	Crashes            int     `json:"crashes,omitempty"`
	Degraded           int     `json:"degraded,omitempty"`
	StragglerWindows   int     `json:"straggler_windows,omitempty"`
	UnavailableSeconds float64 `json:"unavailable_s,omitempty"`

	// BusySeconds sums per-replica service time with hedge-cancel refunds
	// applied — the denominator for hedge-waste fractions.
	BusySeconds float64 `json:"busy_s"`

	MeanBatchSize float64 `json:"mean_batch_size"`
	Utilization   float64 `json:"utilization"`
	PIMShare      float64 `json:"pim_share"`

	TokensIn     int64 `json:"tokens_in"`
	TokensPadded int64 `json:"tokens_padded"`
	TokensOut    int64 `json:"tokens_out"`

	EnergyJ         float64 `json:"energy_j"`
	KVPeakBytes     int64   `json:"kv_peak_bytes"`
	KVCapacityBytes int64   `json:"kv_capacity_bytes"`
	// KVMeanBytes is the time-weighted mean KV footprint per replica over
	// this member's life; KVMeanUtilization is its share of capacity.
	KVMeanBytes       float64 `json:"kv_mean_bytes"`
	KVMeanUtilization float64 `json:"kv_mean_utilization"`
}

// ClusterClassReport summarizes one SLO class.
type ClusterClassReport struct {
	Name       string  `json:"name"`
	RatePerSec float64 `json:"rate_per_s"`

	Offered   int `json:"offered"`
	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected"`
	Completed int `json:"completed"`

	Good             int     `json:"good"`
	GoodputPerSec    float64 `json:"goodput_per_s"`
	DeadlineMisses   int     `json:"deadline_misses"`
	Shed             int     `json:"shed"`
	Retries          int     `json:"retries"`
	DeadlineSeconds  float64 `json:"deadline_s,omitempty"`
	DeadlineMissRate float64 `json:"deadline_miss_rate"`

	Latency LatencyStats `json:"latency"`
	TTFT    LatencyStats `json:"ttft"`
	TPOT    LatencyStats `json:"tpot"`

	TTFTp99SLO    float64 `json:"ttft_p99_slo_s,omitempty"`
	LatencyP99SLO float64 `json:"latency_p99_slo_s,omitempty"`
	TPOTp99SLO    float64 `json:"tpot_p99_slo_s,omitempty"`
	SLOMet        bool    `json:"slo_met"`
}

// ClusterTimelineEvent is one entry of the unified fleet timeline:
// autoscaler actions ("tick", "up-start", "up-active", "drain-start",
// "down" under kind "scale"), fault injection and recovery ("crash",
// "repair", "degrade", "replica-repair" under kind "fault"),
// correlated outages ("outage", "repair" under kind "domain-outage"),
// gray-failure windows ("start", "end" under kind "straggler"), hedge
// traffic ("issue", "win" under kind "hedge") and KV-pressure sheds
// ("kv-shed" under kind "kv"), in event order.
type ClusterTimelineEvent struct {
	Seconds float64 `json:"t_s"`
	Kind    string  `json:"kind"`
	Action  string  `json:"action"`
	// Instance is the affected member (-1 for fleet-level entries such as
	// autoscaler ticks); Replica is the replica a degraded-mode fault
	// touched (-1 otherwise).
	Instance int `json:"instance"`
	Replica  int `json:"replica"`
	// Active counts routable instances after the event.
	Active int `json:"active"`
	// P99 and Samples describe the autoscaler window behind a tick.
	P99     float64 `json:"p99_s,omitempty"`
	Samples int     `json:"samples,omitempty"`
	// RecoverSeconds is the crash-to-repair outage a "repair" closed,
	// including the LUT re-materialization surcharge.
	RecoverSeconds float64 `json:"recover_s,omitempty"`
	// Domain is the failure domain behind a kind "domain-outage" entry
	// (meaningful only there; domain 0 omits the field).
	Domain int `json:"domain,omitempty"`
}

// ClusterReport is the outcome of one cluster simulation. Like
// ServeReport it is bit-reproducible: the same seed, config and
// parallelism-agnostic engine yield a byte-identical JSON encoding on
// every run, including mid-run scale-up/scale-down.
type ClusterReport struct {
	Model     string `json:"model"`
	Format    string `json:"format"`
	Router    string `json:"router"`
	Admission string `json:"admission"`

	InstancesInitial int `json:"instances_initial"`
	InstancesPeak    int `json:"instances_peak"`
	InstancesFinal   int `json:"instances_final"`

	Offered   int `json:"offered"`
	Admitted  int `json:"admitted"`
	Rejected  int `json:"rejected"`
	Completed int `json:"completed"`

	DurationSeconds float64 `json:"duration_s"`
	MakespanSeconds float64 `json:"makespan_s"`

	OfferedPerSec    float64 `json:"offered_per_s"`
	ThroughputPerSec float64 `json:"throughput_per_s"`
	TokensPerSec     float64 `json:"tokens_per_s"`

	// Reliability rows: goodput counts deadline-met completions only, and
	// shed work decomposes by cause. After the drain admitted ==
	// completed + shed.
	Good            int     `json:"good"`
	GoodputPerSec   float64 `json:"goodput_per_s"`
	DeadlineMisses  int     `json:"deadline_misses"`
	Retries         int     `json:"retries"`
	ReprefillTokens int64   `json:"reprefill_tokens"`
	Shed            int     `json:"shed"`
	ShedExpired     int     `json:"shed_expired"`
	ShedKV          int     `json:"shed_kv"`
	ShedQueueFull   int     `json:"shed_queue_full"`
	ShedRetries     int     `json:"shed_retries"`

	Crashes            int          `json:"crashes"`
	DegradedEvents     int          `json:"degraded_events"`
	UnavailableSeconds float64      `json:"unavailable_s"`
	TimeToRecover      LatencyStats `json:"time_to_recover"`
	LUTRematSeconds    float64      `json:"lut_remat_s"`

	// Correlated-failure rows: domain-wide outages, and member repairs an
	// overlapping outage extended (merged into one window, counted once).
	DomainOutages           int `json:"domain_outages,omitempty"`
	DomainOverlapExtensions int `json:"domain_overlap_extensions,omitempty"`

	// Gray-failure and hedging rows. Hedges balance exactly: issued ==
	// cancels + drops, wins are resolutions the duplicate won, and
	// hedge_waste_s is busy time spent on cancelled losers (compare with
	// busy_s for the waste fraction).
	StragglerWindows   int     `json:"straggler_windows,omitempty"`
	HedgesIssued       int     `json:"hedges_issued,omitempty"`
	HedgeWins          int     `json:"hedge_wins,omitempty"`
	HedgeCancels       int     `json:"hedge_cancels,omitempty"`
	HedgeDrops         int     `json:"hedge_drops,omitempty"`
	HedgeWastedSeconds float64 `json:"hedge_waste_s,omitempty"`

	// BusySeconds is fleet-wide replica service time, refunds applied.
	BusySeconds float64 `json:"busy_s"`

	Queue   LatencyStats `json:"queue"`
	Service LatencyStats `json:"service"`
	Latency LatencyStats `json:"latency"`
	TTFT    LatencyStats `json:"ttft"`
	TPOT    LatencyStats `json:"tpot"`

	TokensIn     int64 `json:"tokens_in"`
	TokensPadded int64 `json:"tokens_padded"`
	TokensOut    int64 `json:"tokens_out"`

	EnergyJ           float64 `json:"energy_j"`
	EnergyPerRequestJ float64 `json:"energy_per_request_j"`

	KVPeakBytes     int64 `json:"kv_peak_bytes"`
	KVCapacityBytes int64 `json:"kv_capacity_bytes"`
	// Fleet KV pressure, time-weighted across member lifetimes.
	KVMeanBytes       float64 `json:"kv_mean_bytes"`
	KVMeanUtilization float64 `json:"kv_mean_utilization"`

	DistinctForwardSims int `json:"distinct_forward_sims"`

	Instances []ClusterInstanceReport `json:"instances"`
	Classes   []ClusterClassReport    `json:"classes"`
	// Timeline is the unified fleet event stream (autoscaler, faults,
	// KV sheds), empty when neither subsystem is enabled.
	Timeline []ClusterTimelineEvent `json:"timeline,omitempty"`
}

// ServeCluster runs a cluster-scale serving simulation: a routed,
// admission-controlled, optionally autoscaled fleet of appliances sharing
// one discrete-event clock. Fleet members with the same design share a
// memoized pricing oracle, so a million-request fleet prices each distinct
// forward-pass shape once.
func (s *System) ServeCluster(cfg ClusterConfig) (*ClusterReport, error) {
	seed := cfg.Seed
	if seed == 0 {
		seed = s.seed
	}
	rec, met := cfg.Obs.build()
	ccfg := cluster.Config{
		Base: serve.Config{
			Model:   cfg.Model.config(),
			Fmt:     cfg.Format.inner,
			Variant: cfg.Design.variant(),

			Engine: s.engine,
			Energy: s.energy,

			Replicas: cfg.Replicas,

			MaxBatch:  cfg.MaxBatch,
			Scheduler: serve.Policy(cfg.Scheduler),

			MinTokens:    cfg.MinTokens,
			MaxTokens:    cfg.MaxTokens,
			MeanTokens:   cfg.MeanTokens,
			TokenQuantum: cfg.TokenQuantum,

			OutTokens:     cfg.OutTokens,
			OutTokensMean: cfg.OutTokensMean,
			OutTokensMax:  cfg.OutTokensMax,

			MaxQueue: cfg.MaxQueue,
			KVPolicy: serve.KVPolicy(cfg.KVPolicy),
		},
		Instances: cfg.Instances,
		Router:    cluster.RouterPolicy(cfg.Router),
		Admission: cluster.AdmissionPolicy(cfg.Admission),

		RatePerSec:      cfg.RatePerSec,
		DurationSeconds: cfg.DurationSeconds,
		Seed:            seed,

		Autoscaler: cluster.AutoscalerConfig{
			Enabled:         cfg.Autoscaler.Enabled,
			MinInstances:    cfg.Autoscaler.MinInstances,
			MaxInstances:    cfg.Autoscaler.MaxInstances,
			IntervalSeconds: cfg.Autoscaler.IntervalSeconds,
			SLOSeconds:      cfg.Autoscaler.SLOSeconds,
			ScaleDownFactor: cfg.Autoscaler.ScaleDownFactor,
			WarmupSeconds:   cfg.Autoscaler.WarmupSeconds,
			DrainSeconds:    cfg.Autoscaler.DrainSeconds,
		},

		Faults: cluster.FaultConfig{
			Enabled:          cfg.Faults.Enabled,
			MTTFSeconds:      cfg.Faults.MTTFSeconds,
			MTTRSeconds:      cfg.Faults.MTTRSeconds,
			DegradedFraction: cfg.Faults.DegradedFraction,
			LUTRematGBps:     cfg.Faults.LUTRematGBps,
		},
		Domains: cluster.DomainConfig{
			Enabled:     cfg.Domains.Enabled,
			Count:       cfg.Domains.Count,
			MTBFSeconds: cfg.Domains.MTBFSeconds,
			MTTRSeconds: cfg.Domains.MTTRSeconds,
		},
		Stragglers: cluster.StragglerConfig{
			Enabled:             cfg.Stragglers.Enabled,
			MTBFSeconds:         cfg.Stragglers.MTBFSeconds,
			MeanDurationSeconds: cfg.Stragglers.MeanDurationSeconds,
			Slowdown:            cfg.Stragglers.Slowdown,
		},
		Hedge: cluster.HedgeConfig{
			Enabled:      cfg.Hedge.Enabled,
			DelaySeconds: cfg.Hedge.DelaySeconds,
		},
		Retry: cluster.RetryConfig{
			MaxAttempts:       cfg.Retry.MaxAttempts,
			BackoffSeconds:    cfg.Retry.BackoffSeconds,
			BackoffCapSeconds: cfg.Retry.BackoffCapSeconds,
		},
		Audit:           cfg.Audit,
		DeadlineSeconds: cfg.Deadlines.DefaultSeconds,

		Recorder: rec,
		Metrics:  met,
	}
	for _, d := range cfg.Designs {
		ccfg.Designs = append(ccfg.Designs, d.variant())
	}
	for _, c := range cfg.Classes {
		ccfg.Classes = append(ccfg.Classes, cluster.ClassConfig{
			Name:              c.Name,
			RatePerSec:        c.RatePerSec,
			AdmitRatePerSec:   c.AdmitRatePerSec,
			AdmitBurst:        c.AdmitBurst,
			MinTokens:         c.MinTokens,
			MaxTokens:         c.MaxTokens,
			MeanTokens:        c.MeanTokens,
			OutTokens:         c.OutTokens,
			OutTokensMean:     c.OutTokensMean,
			OutTokensMax:      c.OutTokensMax,
			TTFTp99SLO:        c.TTFTp99SLO,
			LatencyP99SLO:     c.LatencyP99SLO,
			TPOTp99SLO:        c.TPOTp99SLO,
			DeadlineSeconds:   c.DeadlineSeconds,
			HedgeDelaySeconds: c.HedgeDelaySeconds,
		})
	}
	rep, err := cluster.Run(ccfg)
	if err != nil {
		return nil, err
	}
	if err := cfg.Obs.export(rec, met); err != nil {
		return nil, err
	}
	return clusterReport(cfg, rep), nil
}

// clusterReport converts the internal report to the public shape.
func clusterReport(cfg ClusterConfig, r *cluster.Report) *ClusterReport {
	stats := func(s serve.Stats) LatencyStats {
		return LatencyStats{P50: s.P50, P95: s.P95, P99: s.P99, Mean: s.Mean, Max: s.Max}
	}
	out := &ClusterReport{
		Model:     cfg.Model.String(),
		Format:    cfg.Format.Name(),
		Router:    r.Router,
		Admission: r.Admission,

		InstancesInitial: r.InstancesInitial,
		InstancesPeak:    r.InstancesPeak,
		InstancesFinal:   r.InstancesFinal,

		Offered:   r.Offered,
		Admitted:  r.Admitted,
		Rejected:  r.Rejected,
		Completed: r.Completed,

		DurationSeconds: r.DurationSeconds,
		MakespanSeconds: r.MakespanSeconds,

		OfferedPerSec:    r.OfferedPerSec,
		ThroughputPerSec: r.ThroughputPerSec,
		TokensPerSec:     r.TokensPerSec,

		Good:            r.Good,
		GoodputPerSec:   r.GoodputPerSec,
		DeadlineMisses:  r.DeadlineMisses,
		Retries:         r.Retries,
		ReprefillTokens: r.ReprefillTokens,
		Shed:            r.Shed,
		ShedExpired:     r.ShedExpired,
		ShedKV:          r.ShedKV,
		ShedQueueFull:   r.ShedQueueFull,
		ShedRetries:     r.ShedRetries,

		Crashes:            r.Crashes,
		DegradedEvents:     r.DegradedEvents,
		UnavailableSeconds: r.UnavailableSeconds,
		TimeToRecover:      stats(r.TimeToRecover),
		LUTRematSeconds:    r.LUTRematSeconds,

		DomainOutages:           r.DomainOutages,
		DomainOverlapExtensions: r.DomainOverlapExtensions,
		StragglerWindows:        r.StragglerWindows,
		HedgesIssued:            r.HedgesIssued,
		HedgeWins:               r.HedgeWins,
		HedgeCancels:            r.HedgeCancels,
		HedgeDrops:              r.HedgeDrops,
		HedgeWastedSeconds:      r.HedgeWastedSeconds,
		BusySeconds:             r.BusySeconds,

		Queue:   stats(r.Queue),
		Service: stats(r.Service),
		Latency: stats(r.Latency),
		TTFT:    stats(r.TTFT),
		TPOT:    stats(r.TPOT),

		TokensIn:     r.TokensIn,
		TokensPadded: r.TokensPadded,
		TokensOut:    r.TokensOut,

		EnergyJ:           r.EnergyJ,
		EnergyPerRequestJ: r.EnergyPerRequestJ,

		KVPeakBytes:       r.KVPeakBytes,
		KVCapacityBytes:   r.KVCapacityBytes,
		KVMeanBytes:       r.KVMeanBytes,
		KVMeanUtilization: r.KVMeanUtilization,

		DistinctForwardSims: r.DistinctForwardSims,
	}
	for _, ir := range r.Instances {
		out.Instances = append(out.Instances, ClusterInstanceReport{
			ID:                 ir.ID,
			Design:             ir.Design,
			Replicas:           ir.Replicas,
			UpSeconds:          ir.UpAt,
			ActiveSeconds:      ir.ActiveAt,
			DrainSeconds:       ir.DrainAt,
			DownSeconds:        ir.DownAt,
			Domain:             ir.Domain,
			Requests:           ir.Requests,
			Completed:          ir.Completed,
			Shed:               ir.Shed,
			Canceled:           ir.Canceled,
			Displaced:          ir.Displaced,
			Crashes:            ir.Crashes,
			Degraded:           ir.Degraded,
			StragglerWindows:   ir.StragglerWindows,
			UnavailableSeconds: ir.UnavailableSeconds,
			BusySeconds:        ir.BusySeconds,
			Batches:            ir.Batches,
			DecodeSteps:        ir.DecodeSteps,
			MeanBatchSize:      ir.MeanBatchSize,
			Utilization:        ir.Utilization,
			PIMShare:           ir.PIMShare,
			TokensIn:           ir.TokensIn,
			TokensPadded:       ir.TokensPadded,
			TokensOut:          ir.TokensOut,
			EnergyJ:            ir.EnergyJ,
			KVPeakBytes:        ir.KVPeakBytes,
			KVCapacityBytes:    ir.KVCapacityBytes,
			KVMeanBytes:        ir.KVMeanBytes,
			KVMeanUtilization:  ir.KVMeanUtilization,
		})
	}
	for _, cr := range r.Classes {
		out.Classes = append(out.Classes, ClusterClassReport{
			Name:       cr.Name,
			RatePerSec: cr.RatePerSec,
			Offered:    cr.Offered,
			Admitted:   cr.Admitted,
			Rejected:   cr.Rejected,
			Completed:  cr.Completed,

			Good:             cr.Good,
			GoodputPerSec:    cr.GoodputPerSec,
			DeadlineMisses:   cr.DeadlineMisses,
			Shed:             cr.Shed,
			Retries:          cr.Retries,
			DeadlineSeconds:  cr.DeadlineSeconds,
			DeadlineMissRate: cr.DeadlineMissRate,

			Latency:       stats(cr.Latency),
			TTFT:          stats(cr.TTFT),
			TPOT:          stats(cr.TPOT),
			TTFTp99SLO:    cr.TTFTp99SLO,
			LatencyP99SLO: cr.LatencyP99SLO,
			TPOTp99SLO:    cr.TPOTp99SLO,
			SLOMet:        cr.SLOMet,
		})
	}
	for _, ev := range r.Timeline {
		out.Timeline = append(out.Timeline, ClusterTimelineEvent{
			Seconds: ev.T, Kind: ev.Kind, Action: ev.Action,
			Instance: ev.Instance, Replica: ev.Replica, Active: ev.Active,
			P99: ev.P99, Samples: ev.Samples, RecoverSeconds: ev.RecoverSeconds,
			Domain: ev.Domain,
		})
	}
	return out
}

// designVariants converts a public design list (used by experiment
// helpers and the CLIs).
func designVariants(ds []Design) []kernels.Variant {
	vs := make([]kernels.Variant, len(ds))
	for i, d := range ds {
		vs[i] = d.variant()
	}
	return vs
}
