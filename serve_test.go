package localut

import (
	"reflect"
	"testing"
)

func serveTestConfig() ServeConfig {
	return ServeConfig{
		Model:           BERTBase,
		Format:          W1A3,
		Design:          DesignLoCaLUT,
		RatePerSec:      50,
		DurationSeconds: 5,
	}
}

func TestSystemServe(t *testing.T) {
	sys := NewSystem(WithSeed(1))
	rep, err := sys.Serve(serveTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Requests == 0 || rep.Completed != rep.Requests {
		t.Fatalf("served %d of %d requests", rep.Completed, rep.Requests)
	}
	if rep.Model != "BERT-base" || rep.Format != "W1A3" || rep.Design != "LoCaLUT" {
		t.Errorf("report identity %s/%s/%s", rep.Model, rep.Format, rep.Design)
	}
	if rep.Latency.P99 < rep.Latency.P50 || rep.Latency.P50 <= 0 {
		t.Errorf("suspicious latency stats %+v", rep.Latency)
	}
	if rep.EnergyPerRequestJ <= 0 {
		t.Error("energy per request not priced")
	}
}

// TestServeParallelismInvariant pins the acceptance invariant on the
// public API: identical reports across repeated runs and WithParallelism
// levels.
func TestServeParallelismInvariant(t *testing.T) {
	base, err := NewSystem(WithSeed(1)).Serve(serveTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, par := range []int{1, 2, 0} {
		rep, err := NewSystem(WithSeed(1), WithParallelism(par)).Serve(serveTestConfig())
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, rep) {
			t.Fatalf("parallelism %d changed the report:\n%+v\n%+v", par, base, rep)
		}
	}
}

// TestSystemServeDecode pins the public decode surface: TTFT/TPOT stats,
// generated-token throughput and the KV gauge, bit-identical across
// WithParallelism levels.
func TestSystemServeDecode(t *testing.T) {
	cfg := ServeConfig{
		Model:           OPT125M,
		Format:          W1A3,
		Design:          DesignLoCaLUT,
		RatePerSec:      20,
		DurationSeconds: 3,
		OutTokensMean:   16,
		OutTokensMax:    64,
	}
	base, err := NewSystem(WithSeed(1)).Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if base.TTFT.Mean <= 0 || base.TPOT.Mean <= 0 {
		t.Errorf("decode latency stats empty: TTFT %+v TPOT %+v", base.TTFT, base.TPOT)
	}
	if base.TokensOut == 0 || base.TokensPerSec <= 0 || base.DecodeSteps == 0 {
		t.Errorf("token accounting empty: out=%d tok/s=%g steps=%d",
			base.TokensOut, base.TokensPerSec, base.DecodeSteps)
	}
	if base.KVPeakBytes <= 0 || base.KVPeakUtilization <= 0 {
		t.Errorf("KV gauge empty: %d bytes, %g utilization", base.KVPeakBytes, base.KVPeakUtilization)
	}
	for _, par := range []int{1, 2} {
		rep, err := NewSystem(WithSeed(1), WithParallelism(par)).Serve(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, rep) {
			t.Fatalf("parallelism %d changed the decode report", par)
		}
	}
}

func TestServeSeedOverride(t *testing.T) {
	sys := NewSystem(WithSeed(1))
	a, err := sys.Serve(serveTestConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := serveTestConfig()
	cfg.Seed = 2
	b, err := sys.Serve(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a, b) {
		t.Error("seed override had no effect")
	}
}

func TestServeRejectsBadConfig(t *testing.T) {
	sys := NewSystem()
	cfg := serveTestConfig()
	cfg.RatePerSec = 0
	if _, err := sys.Serve(cfg); err == nil {
		t.Error("config without an arrival source accepted")
	}
}

func TestParseDesign(t *testing.T) {
	for _, d := range Designs {
		got, err := ParseDesign(d.String())
		if err != nil || got != d {
			t.Errorf("ParseDesign(%q) = %v, %v", d.String(), got, err)
		}
	}
	if got, err := ParseDesign("locaLUT"); err != nil || got != DesignLoCaLUT {
		t.Errorf("case-insensitive ParseDesign failed: %v, %v", got, err)
	}
	if _, err := ParseDesign("gpu"); err == nil {
		t.Error("unknown design accepted")
	}
}

func TestParseModel(t *testing.T) {
	for _, m := range []Model{BERTBase, OPT125M, ViTBase} {
		got, err := ParseModel(m.String())
		if err != nil || got != m {
			t.Errorf("ParseModel(%q) = %v, %v", m.String(), got, err)
		}
	}
	if _, err := ParseModel("gpt-5"); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestParseSchedulerPolicy(t *testing.T) {
	for _, p := range []SchedulerPolicy{ScheduleFCFS, SchedulePacked} {
		got, err := ParseSchedulerPolicy(p.String())
		if err != nil || got != p {
			t.Errorf("ParseSchedulerPolicy(%q) = %v, %v", p.String(), got, err)
		}
	}
	if _, err := ParseSchedulerPolicy("lifo"); err == nil {
		t.Error("unknown policy accepted")
	}
}
