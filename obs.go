package localut

import (
	"fmt"
	"io"

	"github.com/ais-snu/localut/internal/obs"
)

// ObsConfig attaches the deterministic observability layer to a serving
// or cluster run. Recording is enabled per output: a non-nil TraceWriter
// captures request spans, batch/decode passes and fleet events as Chrome
// trace-event JSON (loadable in Perfetto or chrome://tracing); a non-nil
// MetricsWriter captures interval time-series metrics as CSV or JSON.
// Both exports are pure functions of the run's configuration and seed —
// byte-identical across runs and engine parallelism levels — and a zero
// ObsConfig records nothing at near-zero cost.
type ObsConfig struct {
	// TraceWriter receives the Chrome trace-event JSON export after the
	// run completes (nil = tracing off).
	TraceWriter io.Writer
	// TraceSampleN keeps every N-th request's lifecycle span (by request
	// ID; default 1 = every request). Batch-level spans are always kept.
	TraceSampleN int

	// MetricsWriter receives the time-series export after the run
	// completes (nil = metrics off).
	MetricsWriter io.Writer
	// MetricsIntervalSeconds is the sampling interval (default 1).
	MetricsIntervalSeconds float64
	// MetricsJSON switches the metrics encoding from CSV to JSON.
	MetricsJSON bool
}

// build constructs the internal recorder and metrics sampler for the
// enabled outputs (nil when disabled, which the hooks treat as no-ops).
func (o ObsConfig) build() (*obs.Recorder, *obs.Metrics) {
	var rec *obs.Recorder
	if o.TraceWriter != nil {
		rec = obs.NewRecorder(o.TraceSampleN)
	}
	var met *obs.Metrics
	if o.MetricsWriter != nil {
		met = obs.NewMetrics(o.MetricsIntervalSeconds)
	}
	return rec, met
}

// export writes the enabled outputs to their writers.
func (o ObsConfig) export(rec *obs.Recorder, met *obs.Metrics) error {
	if rec != nil {
		if err := rec.WriteJSON(o.TraceWriter); err != nil {
			return fmt.Errorf("localut: trace export: %w", err)
		}
	}
	if met != nil {
		var err error
		if o.MetricsJSON {
			err = met.WriteJSON(o.MetricsWriter)
		} else {
			err = met.WriteCSV(o.MetricsWriter)
		}
		if err != nil {
			return fmt.Errorf("localut: metrics export: %w", err)
		}
	}
	return nil
}
