module github.com/ais-snu/localut

go 1.22
