package localut

import (
	"math"
	"testing"
)

func TestFormats(t *testing.T) {
	if W1A3.Name() != "W1A3" || W4A4.Name() != "W4A4" {
		t.Error("format names")
	}
	if W1A3.WeightBits() != 1 || W1A3.ActBits() != 3 {
		t.Error("format bits")
	}
	f, err := ParseFormat("W2A2")
	if err != nil || f.Name() != "W2A2" {
		t.Errorf("ParseFormat: %v %v", f, err)
	}
	if _, err := ParseFormat("bogus"); err == nil {
		t.Error("accepted bogus format")
	}
	if _, err := NewFormat(0, 3); err == nil {
		t.Error("accepted 0-bit weights")
	}
	if len(Formats) != 4 || len(Designs) != 6 {
		t.Error("preset lists")
	}
}

func TestDesignNames(t *testing.T) {
	if DesignNaive.String() != "NaivePIM" || DesignLoCaLUT.String() != "LoCaLUT" {
		t.Error("design names")
	}
}

func TestLUTCapacity(t *testing.T) {
	c, err := LUTCapacity(W1A3, 8)
	if err != nil {
		t.Fatal(err)
	}
	if c.ReductionRate < 300 || c.ReductionRate > 420 {
		t.Errorf("reduction rate %.0f, want ~358", c.ReductionRate)
	}
	if c.SliceBytes != 512 {
		t.Errorf("slice bytes %d", c.SliceBytes)
	}
	if _, err := LUTCapacity(W1A3, 0); err == nil {
		t.Error("accepted p=0")
	}
}

func TestChoosePlan(t *testing.T) {
	sys := NewSystem()
	p, err := sys.ChoosePlan(W1A3, 3072, 768, 128)
	if err != nil {
		t.Fatal(err)
	}
	if !p.Streaming || p.P != 8 || p.SliceK != 8 {
		t.Errorf("plan %+v, want streaming p=8 k=8", p)
	}
	if p.PLocal != 5 || p.PDRAM != 8 {
		t.Errorf("residence limits %d/%d, want 5/8", p.PLocal, p.PDRAM)
	}
}

func TestGEMMEndToEnd(t *testing.T) {
	sys := NewSystem(WithSeed(7))
	naive, err := sys.GEMM(W1A3, 256, 256, 8, DesignNaive, WithPaperTiling())
	if err != nil {
		t.Fatal(err)
	}
	loca, err := sys.GEMM(W1A3, 256, 256, 8, DesignLoCaLUT, WithPaperTiling())
	if err != nil {
		t.Fatal(err)
	}
	if !naive.Verified || !loca.Verified {
		t.Fatal("verification failed")
	}
	if loca.TotalSeconds >= naive.TotalSeconds {
		t.Errorf("LoCaLUT %.3e not faster than naive %.3e", loca.TotalSeconds, naive.TotalSeconds)
	}
	if loca.EnergyJ <= 0 || naive.EnergyJ <= 0 {
		t.Error("energy not priced")
	}
}

func TestGEMMOptions(t *testing.T) {
	sys := NewSystem()
	res, err := sys.GEMM(W1A3, 64, 64, 4, DesignLoCaLUT,
		WithPackingDegree(6), WithSliceK(2), WithStreaming(), WithFullOutput())
	if err != nil {
		t.Fatal(err)
	}
	if res.P != 6 || res.SliceK != 2 || !res.Streaming {
		t.Errorf("options not honored: %+v", res)
	}
	if len(res.Output) != 64*4 {
		t.Errorf("full output missing: %d", len(res.Output))
	}
}

func TestQuantizeAndGEMMQuantized(t *testing.T) {
	data := make([]float64, 32*16)
	for i := range data {
		data[i] = math.Sin(float64(i))
	}
	w, err := Quantize(data, 32, 16, W2A2, Weights)
	if err != nil {
		t.Fatal(err)
	}
	aData := make([]float64, 16*4)
	for i := range aData {
		aData[i] = math.Cos(float64(i))
	}
	a, err := Quantize(aData, 16, 4, W2A2, Activations)
	if err != nil {
		t.Fatal(err)
	}
	rows, cols := w.Shape()
	if rows != 32 || cols != 16 {
		t.Errorf("shape %dx%d", rows, cols)
	}
	if w.Scale() <= 0 {
		t.Error("scale")
	}
	if len(w.Dequantize()) != 32*16 {
		t.Error("dequantize length")
	}
	res, err := sysGEMMQuantized(t, w, a)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Error("not verified")
	}
	// Shape mismatch must be rejected.
	if _, err := NewSystem().GEMMQuantized(w, w, DesignOP); err == nil {
		t.Error("accepted mismatched shapes")
	}
}

func sysGEMMQuantized(t *testing.T, w, a *Tensor) (*GEMMResult, error) {
	t.Helper()
	return NewSystem().GEMMQuantized(w, a, DesignLoCaLUT)
}

func TestInferBERT(t *testing.T) {
	sys := NewSystem(WithRanks(4)) // smaller machine keeps the test fast
	res, err := sys.Infer(BERTBase, W1A3, DesignLoCaLUT, InferOptions{Batch: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSeconds <= 0 || res.Prefill.GEMMPIM <= 0 {
		t.Errorf("result %+v", res)
	}
	if res.Decode.Total != 0 {
		t.Error("encoder model produced a decode phase")
	}
}

func TestInferOPTDecode(t *testing.T) {
	sys := NewSystem(WithRanks(4))
	res, err := sys.Infer(OPT125M, W4A4, DesignLoCaLUT, InferOptions{Batch: 1, OutTokens: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Decode.Total <= 0 {
		t.Error("decoder model missing decode phase")
	}
	if math.Abs(res.TotalSeconds-(res.Prefill.Total+res.Decode.Total)) > 1e-12 {
		t.Error("phase totals inconsistent")
	}
}

func TestWithLUTBudgetCapacityTradeoff(t *testing.T) {
	// §VII-B: shrinking the LUT capacity budget must lower the feasible
	// packing degree and cost performance — the capacity-performance
	// tradeoff is tunable end to end.
	full := NewSystem()
	constrained := NewSystem(WithLUTBudget(0.05)) // ~3.2 MB bank budget
	pf, err := full.ChoosePlan(W1A3, 3072, 768, 128)
	if err != nil {
		t.Fatal(err)
	}
	pc, err := constrained.ChoosePlan(W1A3, 3072, 768, 128)
	if err != nil {
		t.Fatal(err)
	}
	if pc.PDRAM >= pf.PDRAM {
		t.Errorf("constrained p_DRAM %d should be below full %d", pc.PDRAM, pf.PDRAM)
	}
	if pc.PredictedSeconds <= pf.PredictedSeconds {
		t.Errorf("constrained predicted %.3g should exceed full %.3g",
			pc.PredictedSeconds, pf.PredictedSeconds)
	}
	rf, err := full.GEMM(W1A3, 512, 256, 4, DesignLoCaLUT, WithPaperTiling())
	if err != nil {
		t.Fatal(err)
	}
	rc, err := constrained.GEMM(W1A3, 512, 256, 4, DesignLoCaLUT, WithPaperTiling())
	if err != nil {
		t.Fatal(err)
	}
	if !rc.Verified || rc.TotalSeconds <= rf.TotalSeconds {
		t.Errorf("constrained GEMM %.3g should be slower than full %.3g (verified=%v)",
			rc.TotalSeconds, rf.TotalSeconds, rc.Verified)
	}

	// An invalid budget must surface as an error, not a panic.
	bad := NewSystem(WithLUTBudget(0))
	if _, err := bad.GEMM(W1A3, 64, 64, 4, DesignLoCaLUT); err == nil {
		t.Error("accepted a zero LUT budget")
	}
}

func TestModelNames(t *testing.T) {
	if BERTBase.String() != "BERT-base" || OPT125M.String() != "OPT-125M" || ViTBase.String() != "ViT-Base" {
		t.Error("model names")
	}
}
