// bertinference runs BERT-base end to end on the simulated PIM system
// across quantization formats and designs, reporting the Fig. 16(a)-style
// phase breakdown and the Fig. 10-style speedups.
package main

import (
	"fmt"
	"log"

	"github.com/ais-snu/localut"
)

func main() {
	sys := localut.NewSystem()
	opts := localut.InferOptions{Batch: 8}

	fmt.Println("BERT-base, batch 8, sequence length 128 — end-to-end inference")
	fmt.Printf("%-6s %-10s %10s %9s | %s\n", "format", "design", "total(ms)", "speedup", "phase breakdown")

	for _, f := range localut.Formats {
		var naive float64
		for _, d := range []localut.Design{localut.DesignNaive, localut.DesignLTC,
			localut.DesignOP, localut.DesignLoCaLUT} {
			res, err := sys.Infer(localut.BERTBase, f, d, opts)
			if err != nil {
				log.Fatal(err)
			}
			if d == localut.DesignNaive {
				naive = res.TotalSeconds
			}
			p := res.Prefill
			fmt.Printf("%-6s %-10s %10.2f %8.2fx | gemm %4.0f%%  xfer %4.0f%%  quant %4.0f%%  sort %4.0f%%  host %4.0f%%\n",
				f.Name(), d, res.TotalSeconds*1e3, naive/res.TotalSeconds,
				100*p.GEMMPIM/p.Total, 100*p.Transfer/p.Total, 100*p.Quantize/p.Total,
				100*p.SortPack/p.Total, 100*p.HostOther/p.Total)
		}
		fmt.Println()
	}
}
