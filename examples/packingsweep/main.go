// packingsweep explores the capacity-computation tradeoff interactively:
// it sweeps the packing degree p on a W2A2 GEMM, compares the cost model's
// prediction against simulation (the Fig. 12 / Fig. 18 view), and shows
// where LUT slice streaming takes over from buffer-resident LUTs.
package main

import (
	"fmt"
	"log"

	"github.com/ais-snu/localut"
)

func main() {
	f := localut.W2A2
	const K, N = 768, 128
	// A sweep consumes only timing, so the analytic cycles-only backend
	// gives identical numbers without the byte-level simulation.
	sys := localut.NewSystem(localut.WithCyclesOnly())

	for _, M := range []int{192, 768, 3072} {
		plan, err := sys.ChoosePlan(f, M, K, N)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s GEMM (%d, %d, %d): cost model picks p=%d (streaming=%v, k=%d)\n",
			f.Name(), M, K, N, plan.P, plan.Streaming, plan.SliceK)
		fmt.Printf("%3s %12s %12s %10s %10s\n", "p", "LUT bytes", "residence", "total(ms)", "speedup")

		naive, err := sys.GEMM(f, M, K, N, localut.DesignNaive, localut.WithPaperTiling())
		if err != nil {
			log.Fatal(err)
		}
		for p := 1; p <= plan.PDRAM; p++ {
			cap, err := localut.LUTCapacity(f, p)
			if err != nil {
				log.Fatal(err)
			}
			opts := []localut.GEMMOption{localut.WithPaperTiling(), localut.WithPackingDegree(p)}
			residence := "buffer"
			if p > plan.PLocal {
				residence = "streaming"
				opts = append(opts, localut.WithStreaming())
			}
			res, err := sys.GEMM(f, M, K, N, localut.DesignLoCaLUT, opts...)
			if err != nil {
				log.Fatal(err)
			}
			marker := ""
			if p == plan.P {
				marker = "  <- model choice"
			}
			fmt.Printf("%3d %12d %12s %10.3f %9.2fx%s\n",
				p, cap.CombinedBytes, residence, res.TotalSeconds*1e3,
				naive.TotalSeconds/res.TotalSeconds, marker)
		}
	}
}
