// Quickstart: quantize float matrices, pick a plan with the §IV-D cost
// model, and run one GEMM under every design on the simulated PIM system.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"github.com/ais-snu/localut"
)

func main() {
	const M, K, N = 768, 768, 128
	f := localut.W1A3
	sys := localut.NewSystem(localut.WithSeed(42))

	// 1. What will the cost model pick for this shape?
	plan, err := sys.ChoosePlan(f, M, K, N)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cost model for %s %dx%dx%d: p=%d streaming=%v k=%d (p_local=%d, p_DRAM=%d)\n",
		f.Name(), M, K, N, plan.P, plan.Streaming, plan.SliceK, plan.PLocal, plan.PDRAM)

	// 2. LUT capacities at the chosen packing degree (the Fig. 6 tradeoff).
	cap, err := localut.LUTCapacity(f, plan.P)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LUTs at p=%d: canonical %d B + reordering %d B (vs %d B operation-packed, %.0fx reduction)\n\n",
		plan.P, cap.CanonicalBytes, cap.ReorderBytes, cap.OperationPackedByte, cap.ReductionRate)

	// 3. Run the same GEMM under every design point.
	fmt.Printf("%-10s %12s %12s %10s %9s\n", "design", "total (ms)", "kernel (ms)", "energy (J)", "speedup")
	var naive float64
	for _, d := range localut.Designs {
		res, err := sys.GEMM(f, M, K, N, d, localut.WithPaperTiling())
		if err != nil {
			log.Fatal(err)
		}
		if d == localut.DesignNaive {
			naive = res.TotalSeconds
		}
		fmt.Printf("%-10s %12.3f %12.3f %10.4f %8.2fx  (p=%d, verified=%v)\n",
			d, res.TotalSeconds*1e3, res.KernelSeconds*1e3, res.EnergyJ,
			naive/res.TotalSeconds, res.P, res.Verified)
	}

	// 4. Bring your own data: quantize real floats and multiply.
	rng := rand.New(rand.NewSource(7))
	wData := make([]float64, 64*48)
	for i := range wData {
		wData[i] = rng.NormFloat64()
	}
	aData := make([]float64, 48*8)
	for i := range aData {
		aData[i] = rng.NormFloat64()
	}
	w, err := localut.Quantize(wData, 64, 48, f, localut.Weights)
	if err != nil {
		log.Fatal(err)
	}
	a, err := localut.Quantize(aData, 48, 8, f, localut.Activations)
	if err != nil {
		log.Fatal(err)
	}
	res, err := sys.GEMMQuantized(w, a, localut.DesignLoCaLUT, localut.WithFullOutput())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\ncustom 64x48x8 GEMM: %d outputs, first = %d (scale %.4g x %.4g), verified=%v\n",
		len(res.Output), res.Output[0], w.Scale(), a.Scale(), res.Verified)
}
