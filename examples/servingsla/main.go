// servingsla finds, for each kernel design, the highest open-loop arrival
// rate a LoCaLUT appliance can sustain while meeting the two latency SLOs
// decode-dominated LLM serving is judged by: p99 time-to-first-token
// (prompt responsiveness) and p99 time-per-output-token (generation
// smoothness). Each probe is a full discrete-event simulation with
// token-level continuous-batching decode priced through the cycles-only
// backend, so the binary search over rates runs in well under a second.
package main

import (
	"fmt"
	"log"

	"github.com/ais-snu/localut"
)

const (
	sloTTFTP99Seconds = 0.5   // p99 time-to-first-token objective
	sloTPOTP99Seconds = 0.080 // p99 time-per-output-token objective
	windowSeconds     = 10    // arrival window per probe
	maxRate           = 512   // search ceiling (requests/sec)
	outTokensMean     = 16    // sampled output length distribution
	outTokensMax      = 64
)

func main() {
	sys := localut.NewSystem(localut.WithSeed(1))

	probe := func(d localut.Design, rate float64) (*localut.ServeReport, error) {
		return sys.Serve(localut.ServeConfig{
			Model:           localut.OPT125M,
			Format:          localut.W1A3,
			Design:          d,
			RatePerSec:      rate,
			DurationSeconds: windowSeconds,
			OutTokensMean:   outTokensMean,
			OutTokensMax:    outTokensMax,
		})
	}

	meetsSLO := func(rep *localut.ServeReport) bool {
		return rep.Completed > 0 &&
			rep.TTFT.P99 <= sloTTFTP99Seconds &&
			rep.TPOT.P99 <= sloTPOTP99Seconds
	}

	fmt.Printf("max sustainable rate meeting ttft p99 <= %.0f ms AND tpot p99 <= %.0f ms\n",
		sloTTFTP99Seconds*1e3, sloTPOTP99Seconds*1e3)
	fmt.Printf("(OPT-125M W1A3, ~%d output tokens/request, %ds windows):\n\n",
		outTokensMean, windowSeconds)
	fmt.Printf("%-10s %12s %12s %12s %12s %10s\n",
		"design", "max rate/s", "tokens/s", "ttft p99", "tpot p99", "util")

	for _, d := range localut.Designs {
		// Binary search the largest integer rate meeting both SLOs. The
		// simulator is deterministic, so the search is reproducible.
		lo, hi := 0, maxRate // lo: known-feasible, hi: known-infeasible
		for lo+1 < hi {
			mid := (lo + hi) / 2
			rep, err := probe(d, float64(mid))
			if err != nil {
				log.Fatal(err)
			}
			if meetsSLO(rep) {
				lo = mid
			} else {
				hi = mid
			}
		}
		if lo == 0 {
			fmt.Printf("%-10s %12s\n", d, "none")
			continue
		}
		rep, err := probe(d, float64(lo))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12d %12.0f %9.1f ms %9.1f ms %10.2f\n",
			d, lo, rep.TokensPerSec, rep.TTFT.P99*1e3, rep.TPOT.P99*1e3, rep.RankUtilization)
	}
}
