// servingsla finds, for each kernel design, the highest open-loop arrival
// rate a LoCaLUT appliance can sustain while meeting a p99 latency SLO —
// the capacity-planning question the request-level serving simulator
// exists to answer. Each probe is a full discrete-event simulation priced
// through the cycles-only backend, so the binary search over rates runs in
// well under a second.
package main

import (
	"fmt"
	"log"

	"github.com/ais-snu/localut"
)

const (
	sloP99Seconds = 0.5 // the service-level objective on p99 latency
	windowSeconds = 10  // arrival window per probe
	maxRate       = 512 // search ceiling (requests/sec)
)

func main() {
	sys := localut.NewSystem(localut.WithSeed(1))

	probe := func(d localut.Design, rate float64) (*localut.ServeReport, error) {
		return sys.Serve(localut.ServeConfig{
			Model:           localut.BERTBase,
			Format:          localut.W1A3,
			Design:          d,
			RatePerSec:      rate,
			DurationSeconds: windowSeconds,
		})
	}

	fmt.Printf("max sustainable rate meeting p99 <= %.0f ms (BERT-base W1A3, 10s windows):\n\n",
		sloP99Seconds*1e3)
	fmt.Printf("%-10s %12s %14s %10s %10s\n", "design", "max rate/s", "throughput/s", "p99 (ms)", "util")

	for _, d := range localut.Designs {
		// Binary search the largest integer rate whose p99 meets the SLO.
		// The simulator is deterministic, so the search is reproducible.
		lo, hi := 0, maxRate // lo: known-feasible, hi: known-infeasible
		for lo+1 < hi {
			mid := (lo + hi) / 2
			rep, err := probe(d, float64(mid))
			if err != nil {
				log.Fatal(err)
			}
			if rep.Latency.P99 <= sloP99Seconds && rep.Completed > 0 {
				lo = mid
			} else {
				hi = mid
			}
		}
		if lo == 0 {
			fmt.Printf("%-10s %12s\n", d, "none")
			continue
		}
		rep, err := probe(d, float64(lo))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %12d %14.1f %10.1f %10.2f\n",
			d, lo, rep.ThroughputPerSec, rep.Latency.P99*1e3, rep.RankUtilization)
	}
}
