// transformerforward runs one full transformer encoder layer numerically:
// every projection/FFN GEMM executes as quantized integer lookups on the
// simulated PIM system (the Fig. 8 split), the host computes attention,
// softmax, layer norm and GELU in fp32, and the result is compared against
// a pure-float reference of the same layer. This demonstrates the paper's
// end-to-end numeric contract: the LUT pipeline adds no error beyond
// quantization itself.
package main

import (
	"fmt"
	"log"
	"math"
	"math/rand"

	"github.com/ais-snu/localut"
)

const (
	tokens = 32
	hidden = 128
	ffn    = 512
	heads  = 4
)

// layer holds the float weights of one encoder layer.
type layer struct {
	wq, wk, wv, wo []float64 // hidden x hidden
	w1             []float64 // ffn x hidden
	w2             []float64 // hidden x ffn
}

func randMat(rng *rand.Rand, rows, cols int) []float64 {
	m := make([]float64, rows*cols)
	for i := range m {
		m[i] = rng.NormFloat64() / math.Sqrt(float64(cols))
	}
	return m
}

func main() {
	rng := rand.New(rand.NewSource(7))
	l := &layer{
		wq: randMat(rng, hidden, hidden), wk: randMat(rng, hidden, hidden),
		wv: randMat(rng, hidden, hidden), wo: randMat(rng, hidden, hidden),
		w1: randMat(rng, ffn, hidden), w2: randMat(rng, hidden, ffn),
	}
	x := randMat(rng, tokens, hidden)

	ref, err := forward(l, x, nil, localut.Format{})
	if err != nil {
		log.Fatal(err)
	}

	sys := localut.NewSystem()
	fmt.Printf("one encoder layer, %d tokens x %d hidden, PIM GEMMs vs float reference:\n\n", tokens, hidden)
	fmt.Printf("%-6s %14s %16s\n", "format", "rel. error", "PIM GEMM time")
	for _, f := range localut.Formats {
		var gemmSeconds float64
		got, err := forward(l, x, func(w, in []float64, m, k, n int) ([]float64, error) {
			out, sec, err := pimGEMM(sys, f, w, in, m, k, n)
			gemmSeconds += sec
			return out, err
		}, f)
		if err != nil {
			log.Fatal(err)
		}
		var num, den float64
		for i := range ref {
			d := got[i] - ref[i]
			num += d * d
			den += ref[i] * ref[i]
		}
		fmt.Printf("%-6s %14.4f %13.3f ms\n", f.Name(), math.Sqrt(num/den), gemmSeconds*1e3)
	}
	fmt.Println("\nevery PIM GEMM above was verified bit-exact against the integer reference,")
	fmt.Println("so the error is per-tensor post-training quantization alone, compounded")
	fmt.Println("across six projections (real W1Ax deployments recover accuracy with")
	fmt.Println("quantization-aware training, e.g. BinaryBERT [3]; the paper inherits those")
	fmt.Println("checkpoints, while this library reproduces the execution substrate).")
}

// gemmFn multiplies W (m x k) by in^T columns; in is tokens x k row-major,
// output tokens x m row-major.
type gemmFn func(w, in []float64, m, k, n int) ([]float64, error)

// pimGEMM quantizes operands, runs the LoCaLUT design on the simulated
// system and dequantizes. Activations arrive tokens x k; the engine wants
// k x tokens.
func pimGEMM(sys *localut.System, f localut.Format, w, in []float64, m, k, n int) ([]float64, float64, error) {
	wq, err := localut.Quantize(w, m, k, f, localut.Weights)
	if err != nil {
		return nil, 0, err
	}
	at := make([]float64, k*n)
	for t := 0; t < n; t++ {
		for kk := 0; kk < k; kk++ {
			at[kk*n+t] = in[t*k+kk]
		}
	}
	aq, err := localut.Quantize(at, k, n, f, localut.Activations)
	if err != nil {
		return nil, 0, err
	}
	res, err := sys.GEMMQuantized(wq, aq, localut.DesignLoCaLUT, localut.WithFullOutput())
	if err != nil {
		return nil, 0, err
	}
	if !res.Verified {
		return nil, 0, fmt.Errorf("PIM kernel verification failed")
	}
	scale := wq.Scale() * aq.Scale()
	out := make([]float64, n*m)
	for mi := 0; mi < m; mi++ {
		for t := 0; t < n; t++ {
			out[t*m+mi] = float64(res.Output[mi*n+t]) * scale
		}
	}
	return out, res.KernelSeconds, nil
}

// floatGEMM is the host float reference of the same contraction.
func floatGEMM(w, in []float64, m, k, n int) ([]float64, error) {
	out := make([]float64, n*m)
	for t := 0; t < n; t++ {
		for mi := 0; mi < m; mi++ {
			s := 0.0
			for kk := 0; kk < k; kk++ {
				s += w[mi*k+kk] * in[t*k+kk]
			}
			out[t*m+mi] = s
		}
	}
	return out, nil
}

// forward runs the encoder layer; gemm == nil selects the float reference.
func forward(l *layer, x []float64, gemm gemmFn, f localut.Format) ([]float64, error) {
	if gemm == nil {
		gemm = floatGEMM
	}
	h := append([]float64(nil), x...)
	if err := localut.LayerNorm(h, tokens, hidden, nil, nil); err != nil {
		return nil, err
	}
	q, err := gemm(l.wq, h, hidden, hidden, tokens)
	if err != nil {
		return nil, err
	}
	k, err := gemm(l.wk, h, hidden, hidden, tokens)
	if err != nil {
		return nil, err
	}
	v, err := gemm(l.wv, h, hidden, hidden, tokens)
	if err != nil {
		return nil, err
	}
	attn, err := localut.Attention(q, k, v, tokens, hidden, heads)
	if err != nil {
		return nil, err
	}
	proj, err := gemm(l.wo, attn, hidden, hidden, tokens)
	if err != nil {
		return nil, err
	}
	if err := localut.AddInPlace(proj, x); err != nil {
		return nil, err
	}

	h2 := append([]float64(nil), proj...)
	if err := localut.LayerNorm(h2, tokens, hidden, nil, nil); err != nil {
		return nil, err
	}
	mid, err := gemm(l.w1, h2, ffn, hidden, tokens)
	if err != nil {
		return nil, err
	}
	localut.GELU(mid)
	out, err := gemm(l.w2, mid, hidden, ffn, tokens)
	if err != nil {
		return nil, err
	}
	if err := localut.AddInPlace(out, proj); err != nil {
		return nil, err
	}
	return out, nil
}
