// capacityplanner prints the LUT capacity laws for every evaluation format:
// table sizes across packing degrees, the canonicalization reduction rate,
// and the residence limits (p_local / p_DRAM) on the UPMEM-class machine —
// the planning view behind Fig. 6 and §V-A.
package main

import (
	"fmt"
	"log"

	"github.com/ais-snu/localut"
)

func main() {
	sys := localut.NewSystem()
	for _, f := range localut.Formats {
		// Residence limits come from the cost model on a representative
		// tall-GEMM shape.
		plan, err := sys.ChoosePlan(f, 3072, 768, 128)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("\n%s — p_local=%d (64 KB WRAM), p_DRAM=%d (64 MB bank), model pick p=%d\n",
			f.Name(), plan.PLocal, plan.PDRAM, plan.P)
		fmt.Printf("%3s %16s %14s %14s %12s %10s\n",
			"p", "op-packed (B)", "canonical (B)", "reorder (B)", "combined (B)", "reduction")
		for p := 1; p <= plan.PDRAM; p++ {
			c, err := localut.LUTCapacity(f, p)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("%3d %16d %14d %14d %12d %9.1fx\n",
				p, c.OperationPackedByte, c.CanonicalBytes, c.ReorderBytes,
				c.CombinedBytes, c.ReductionRate)
		}
	}
}
