package localut

import "github.com/ais-snu/localut/internal/hostops"

// The host-resident fp32 operators of the paper's execution split (Fig. 8):
// the PIM banks run the projection/FFN GEMMs while softmax, normalization,
// GELU and attention stay on the host. These wrappers let applications
// assemble a complete numeric transformer forward pass around GEMMQuantized
// (see examples/transformerforward).
//
// Each operator touches only the slices it is given, so callers may run
// them concurrently over disjoint tensors — e.g. layer-parallel host work
// alongside GEMMBatch on the simulated banks.

// Softmax applies a numerically-stable softmax over each row in place.
func Softmax(x []float64, rows, cols int) error { return hostops.Softmax(x, rows, cols) }

// LayerNorm normalizes each row to zero mean/unit variance with optional
// affine gamma/beta (nil for identity).
func LayerNorm(x []float64, rows, cols int, gamma, beta []float64) error {
	return hostops.LayerNorm(x, rows, cols, gamma, beta)
}

// GELU applies the tanh-approximation GELU in place.
func GELU(x []float64) { hostops.GELU(x) }

// AddInPlace accumulates b into a (residual connection).
func AddInPlace(a, b []float64) error { return hostops.AddInPlace(a, b) }

// Attention computes multi-head scaled dot-product attention for one
// sequence (q, k, v are tokens x hidden row-major).
func Attention(q, k, v []float64, tokens, hidden, heads int) ([]float64, error) {
	return hostops.Attention(q, k, v, tokens, hidden, heads)
}
