package localut

import (
	"math"
	"math/rand"
	"testing"
)

// TestIntegrationQuantizedGEMMNumerics runs the full public pipeline —
// float data, quantization, simulated PIM execution, dequantization — and
// checks the result against the float reference within the quantization
// error bound. This is the numerical contract of the whole system: the PIM
// LUT path adds no error beyond quantization itself.
func TestIntegrationQuantizedGEMMNumerics(t *testing.T) {
	const M, K, N = 96, 128, 16
	rng := rand.New(rand.NewSource(5))
	wData := make([]float64, M*K)
	for i := range wData {
		wData[i] = rng.NormFloat64()
	}
	aData := make([]float64, K*N)
	for i := range aData {
		aData[i] = rng.NormFloat64()
	}
	// Float reference.
	ref := make([]float64, M*N)
	for m := 0; m < M; m++ {
		for k := 0; k < K; k++ {
			for n := 0; n < N; n++ {
				ref[m*N+n] += wData[m*K+k] * aData[k*N+n]
			}
		}
	}

	// Expected relative error per format from pure quantization (measured
	// bounds with margin; W1Ax formats are coarse by design, and per-tensor
	// absmax scaling leaves W4A4 around 0.2 on Gaussian data).
	bounds := map[string]float64{"W1A3": 0.65, "W1A4": 0.65, "W2A2": 0.65, "W4A4": 0.25}
	sys := NewSystem()
	for _, f := range Formats {
		w, err := Quantize(wData, M, K, f, Weights)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Quantize(aData, K, N, f, Activations)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.GEMMQuantized(w, a, DesignLoCaLUT, WithFullOutput())
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			t.Fatalf("%s: kernel verification failed", f.Name())
		}
		// Dequantize the integer output and compare to the float reference.
		scale := w.Scale() * a.Scale()
		var num, den float64
		for i, v := range res.Output {
			d := float64(v)*scale - ref[i]
			num += d * d
			den += ref[i] * ref[i]
		}
		rel := math.Sqrt(num / den)
		if rel > bounds[f.Name()] {
			t.Errorf("%s: relative error %.3f exceeds bound %.2f", f.Name(), rel, bounds[f.Name()])
		}
		if rel <= 0 {
			t.Errorf("%s: implausible zero error", f.Name())
		}
	}
}

// TestIntegrationFormatErrorOrdering: more bits must mean less error —
// the monotonicity behind the Fig. 15 accuracy axis.
func TestIntegrationFormatErrorOrdering(t *testing.T) {
	const M, K, N = 48, 64, 8
	rng := rand.New(rand.NewSource(9))
	wData := make([]float64, M*K)
	aData := make([]float64, K*N)
	for i := range wData {
		wData[i] = rng.NormFloat64()
	}
	for i := range aData {
		aData[i] = rng.NormFloat64()
	}
	ref := make([]float64, M*N)
	for m := 0; m < M; m++ {
		for k := 0; k < K; k++ {
			for n := 0; n < N; n++ {
				ref[m*N+n] += wData[m*K+k] * aData[k*N+n]
			}
		}
	}
	sys := NewSystem()
	errFor := func(f Format) float64 {
		w, err := Quantize(wData, M, K, f, Weights)
		if err != nil {
			t.Fatal(err)
		}
		a, err := Quantize(aData, K, N, f, Activations)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sys.GEMMQuantized(w, a, DesignLoCaLUT, WithFullOutput())
		if err != nil {
			t.Fatal(err)
		}
		scale := w.Scale() * a.Scale()
		var num, den float64
		for i, v := range res.Output {
			d := float64(v)*scale - ref[i]
			num += d * d
			den += ref[i] * ref[i]
		}
		return math.Sqrt(num / den)
	}
	if !(errFor(W4A4) < errFor(W2A2)) {
		t.Error("W4A4 should be more accurate than W2A2")
	}
	if !(errFor(W4A4) < errFor(W1A3)) {
		t.Error("W4A4 should be more accurate than W1A3")
	}
}

// TestIntegrationDesignsAgree: every design must produce the identical
// integer output for the same quantized inputs (they are all exact).
func TestIntegrationDesignsAgree(t *testing.T) {
	sys := NewSystem(WithSeed(3))
	var ref []int32
	for _, d := range Designs {
		res, err := sys.GEMM(W2A2, 64, 96, 8, d, WithFullOutput())
		if err != nil {
			t.Fatalf("%v: %v", d, err)
		}
		if ref == nil {
			ref = res.Output
			continue
		}
		for i := range ref {
			if res.Output[i] != ref[i] {
				t.Fatalf("%v: output[%d] = %d, want %d", d, i, res.Output[i], ref[i])
			}
		}
	}
}
